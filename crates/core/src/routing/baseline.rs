//! Deterministic expected-travel-time baseline.
//!
//! The paper's intro argues that routing on *average* travel times picks
//! riskier paths than routing on distributions. This module provides that
//! baseline: Dijkstra over per-edge expected times (histogram means), plus
//! its on-time probability under the full stochastic cost model — the
//! quantity the quality table compares PBR against.

use crate::cost::HybridCost;
use srt_dist::{with_local_pool, Histogram, HistogramPool};
use srt_graph::algo::{dijkstra, DijkstraScratch, Path};
use srt_graph::NodeId;

/// Shortest expected-time path from `source` to `target` under the cost
/// oracle's marginal means. `None` when unreachable.
pub fn expected_time_path(cost: &HybridCost, source: NodeId, target: NodeId) -> Option<Path> {
    let g = cost.graph();
    let sp = dijkstra(g, source, Some(target), |e| cost.marginal(e).mean());
    sp.extract_path(target)
}

/// The baseline route with its stochastic evaluation attached.
#[derive(Clone, Debug)]
pub struct ExpectedTimeBaseline {
    /// The expected-time-optimal path.
    pub path: Path,
    /// Its full travel-time distribution under the cost model.
    pub distribution: Option<Histogram>,
    /// Its on-time probability for the queried budget.
    pub probability: f64,
    /// Sum of marginal means along the path.
    pub expected_time_s: f64,
}

impl ExpectedTimeBaseline {
    /// Computes the baseline for one query. `None` when `target` is
    /// unreachable from `source`.
    pub fn solve(
        cost: &HybridCost,
        source: NodeId,
        target: NodeId,
        budget_s: f64,
    ) -> Option<Self> {
        with_local_pool(|pool| {
            Self::solve_with(cost, source, target, budget_s, &mut DijkstraScratch::new(), pool)
        })
    }

    /// Like [`ExpectedTimeBaseline::solve`], but running the Dijkstra
    /// through a reusable scratch and folding the path distribution
    /// through a reusable histogram pool, so steady-state query serving
    /// (the routing engine's pivot initialization) performs no per-query
    /// allocation of search arrays and no per-edge allocation of
    /// intermediate distributions. Identical traversal, identical
    /// results.
    ///
    /// The returned distribution is an ordinary owned histogram (it
    /// escapes into the caller's result); every intermediate prefix is
    /// recycled into `pool`, which therefore shows zero net buffer
    /// checkout after the call.
    pub fn solve_with(
        cost: &HybridCost,
        source: NodeId,
        target: NodeId,
        budget_s: f64,
        scratch: &mut DijkstraScratch,
        pool: &mut HistogramPool,
    ) -> Option<Self> {
        let g = cost.graph();
        scratch.run(g, source, Some(target), |e| cost.marginal(e).mean());
        let path = scratch.extract_path(target)?;
        let distribution = cost.path_distribution_pooled(&path.edges, pool).map(|d| {
            // The result outlives the pool: hand back the pooled buffer
            // and keep an exact-size owned copy (bit-identical).
            let owned = d.clone();
            pool.recycle(d);
            owned
        });
        let probability = distribution
            .as_ref()
            .map(|d| d.prob_within(budget_s))
            .unwrap_or(1.0);
        let expected_time_s = path.edges.iter().map(|&e| cost.marginal(e).mean()).sum();
        Some(ExpectedTimeBaseline {
            path,
            distribution,
            probability,
            expected_time_s,
        })
    }
}

/// The classic path-enumeration baseline: enumerate the `k` shortest
/// *expected-time* paths (Yen), evaluate each one's full distribution
/// under the stochastic cost model, and keep the most probable. An upper
/// bound on what deterministic enumeration can achieve — and a lower
/// bound for PBR, which searches distribution space directly.
#[derive(Clone, Debug)]
pub struct KPathsBaseline {
    /// The best of the `k` candidates.
    pub best: ExpectedTimeBaseline,
    /// Candidates actually enumerated (≤ k).
    pub candidates: usize,
}

impl KPathsBaseline {
    /// Evaluates the `k`-path baseline for one query.
    pub fn solve(
        cost: &HybridCost,
        source: NodeId,
        target: NodeId,
        budget_s: f64,
        k: usize,
    ) -> Option<Self> {
        let g = cost.graph();
        let paths =
            srt_graph::algo::k_shortest_paths(g, source, target, k, |e| cost.marginal(e).mean());
        if paths.is_empty() {
            // Yen's returns nothing for source == target; fall back.
            return ExpectedTimeBaseline::solve(cost, source, target, budget_s).map(|best| {
                KPathsBaseline {
                    best,
                    candidates: 1,
                }
            });
        }
        let candidates = paths.len();
        let mut best: Option<ExpectedTimeBaseline> = None;
        for (path, expected_time_s) in paths {
            let distribution = cost.path_distribution(&path.edges);
            let probability = distribution
                .as_ref()
                .map(|d| d.prob_within(budget_s))
                .unwrap_or(1.0);
            if best.as_ref().is_none_or(|b| probability > b.probability) {
                best = Some(ExpectedTimeBaseline {
                    path,
                    distribution,
                    probability,
                    expected_time_s,
                });
            }
        }
        best.map(|best| KPathsBaseline { best, candidates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CombinePolicy;
    use crate::model::training::{train_hybrid, TrainingConfig};
    use srt_ml::forest::ForestConfig;
    use srt_synth::{SyntheticWorld, WorldConfig};

    fn setup() -> (SyntheticWorld, crate::HybridModel) {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let cfg = TrainingConfig {
            train_pairs: 100,
            test_pairs: 30,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 5,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(&world, &cfg).unwrap();
        (world, model)
    }

    #[test]
    fn baseline_path_is_valid_and_evaluated() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let s = NodeId(0);
        let t = NodeId((world.graph.num_nodes() / 2) as u32);
        let b = ExpectedTimeBaseline::solve(&cost, s, t, 600.0).expect("reachable");
        b.path.validate(&world.graph).unwrap();
        assert_eq!(b.path.source(), s);
        assert_eq!(b.path.target(), t);
        assert!((0.0..=1.0).contains(&b.probability));
        assert!(b.expected_time_s > 0.0);
    }

    #[test]
    fn baseline_minimizes_expected_time() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let s = NodeId(0);
        let t = NodeId((world.graph.num_nodes() - 1) as u32);
        let b = ExpectedTimeBaseline::solve(&cost, s, t, 600.0).expect("reachable");
        // Check optimality against Dijkstra distance directly.
        let d = srt_graph::algo::dijkstra(&world.graph, s, Some(t), |e| cost.marginal(e).mean())
            .distance(t);
        assert!((b.expected_time_s - d).abs() < 1e-6);
    }

    #[test]
    fn generous_budget_gives_high_probability() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let s = NodeId(0);
        let t = NodeId(5);
        let tight = ExpectedTimeBaseline::solve(&cost, s, t, 1.0).unwrap();
        let loose = ExpectedTimeBaseline::solve(&cost, s, t, 1e6).unwrap();
        assert!(loose.probability >= tight.probability);
        assert!(loose.probability > 0.99);
    }

    #[test]
    fn k_paths_baseline_improves_on_single_path() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let mut multi_candidate_queries = 0usize;
        for t in (3..world.graph.num_nodes() as u32).step_by(5) {
            let s = NodeId(0);
            let t = NodeId(t);
            let exp = srt_graph::algo::dijkstra(&world.graph, s, Some(t), |e| {
                cost.marginal(e).mean()
            })
            .distance(t);
            if !exp.is_finite() {
                continue;
            }
            let budget = exp * 1.02;
            let one = ExpectedTimeBaseline::solve(&cost, s, t, budget).unwrap();
            let kp = KPathsBaseline::solve(&cost, s, t, budget, 6).unwrap();
            // Considering more candidates can only help.
            assert!(kp.best.probability >= one.probability - 1e-9);
            assert!(kp.candidates >= 1 && kp.candidates <= 6);
            if kp.candidates > 1 {
                multi_candidate_queries += 1;
            }
        }
        // The enumeration itself must be exercised (alternatives exist on
        // a grid-like world even when none is strictly better).
        assert!(multi_candidate_queries > 0, "Yen never enumerated alternatives");
    }

    #[test]
    fn k_paths_never_beats_full_pbr() {
        use crate::routing::{BudgetRouter, RouterConfig};
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let router = BudgetRouter::new(&cost, RouterConfig::default());
        let s = NodeId(2);
        let t = NodeId((world.graph.num_nodes() - 3) as u32);
        let exp = srt_graph::algo::dijkstra(&world.graph, s, Some(t), |e| cost.marginal(e).mean())
            .distance(t);
        let budget = exp * 1.05;
        let kp = KPathsBaseline::solve(&cost, s, t, budget, 8).unwrap();
        let pbr = router.route(s, t, budget, None);
        // PBR explores distribution space directly; a path enumeration by
        // expected time cannot beat it (up to quantization noise).
        assert!(kp.best.probability <= pbr.probability + 2e-3);
    }

    #[test]
    fn same_source_and_target_yields_empty_path() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let b = ExpectedTimeBaseline::solve(&cost, NodeId(3), NodeId(3), 60.0).unwrap();
        assert!(b.path.is_empty());
        assert_eq!(b.probability, 1.0);
    }
}
