//! Error type for the hybrid-routing core.

use std::fmt;

/// Errors produced by training and routing.
#[derive(Clone, PartialEq, Debug)]
pub enum CoreError {
    /// Not enough well-observed edge pairs to honour the training config.
    InsufficientPairs { requested: usize, available: usize },
    /// An underlying ML estimator failed.
    Ml(srt_ml::MlError),
    /// An underlying distribution operation failed.
    Dist(srt_dist::DistError),
    /// The routing query referenced a vertex outside the graph.
    BadQuery(String),
    /// A filesystem operation on a model snapshot failed (message form,
    /// keeping the enum `Clone + PartialEq`).
    Io(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InsufficientPairs { requested, available } => write!(
                f,
                "training requested {requested} edge pairs but only {available} have sufficient data"
            ),
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
            CoreError::Dist(e) => write!(f, "distribution error: {e}"),
            CoreError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            CoreError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            CoreError::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<srt_ml::MlError> for CoreError {
    fn from(e: srt_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<srt_dist::DistError> for CoreError {
    fn from(e: srt_dist::DistError) -> Self {
        CoreError::Dist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_conversions() {
        let e: CoreError = srt_ml::MlError::EmptyDataset.into();
        assert!(e.to_string().contains("ml error"));
        let e: CoreError = srt_dist::DistError::NoSamples.into();
        assert!(e.to_string().contains("distribution error"));
        let e = CoreError::InsufficientPairs {
            requested: 5000,
            available: 12,
        };
        assert!(e.to_string().contains("5000"));
        assert!(e.to_string().contains("12"));
    }
}
