//! The engine's reusable concurrency-protocol cores, extracted so the
//! `srt-check` model checker can drive them under exhaustive
//! interleaving.
//!
//! Everything here is written against [`sys`] — `srt-check`'s
//! sync-primitive switch. In a normal build `sys` *is* `std::sync` (the
//! re-exports are zero-cost, codegen-identical); under
//! `RUSTFLAGS="--cfg srt_check"` every atomic and lock operation yields
//! to the checker's cooperative scheduler, and the model suites in
//! `crates/check/tests/` prove the protocols under **every**
//! interleaving at the preemption bound, not just the ones a stress
//! test happened to sample.
//!
//! The three cores:
//!
//! * [`SeqLock`] — the stats seqlock (PR 8): bulk rewrites flip a
//!   generation counter odd; readers retry until a stable even
//!   generation brackets their pass. Model: no torn snapshot, the
//!   generation always returns to even.
//! * [`BoundedLru`] — the insert-then-trim bounds cache (PR 8): misses
//!   insert first and trim second, so the capacity bound is structural
//!   at every critical-section exit. Model: size never exceeds capacity
//!   at any interleaving point.
//! * [`EpochCell`] — the pin/publish epoch swap (PR 8): readers pin an
//!   immutable `Arc` snapshot once; writers replace the pointer under a
//!   momentary write lock. Model: a pinned epoch never observes
//!   neighboring epochs' state.
//!
//! The poison-tolerance contract of `routing::engine` carries over:
//! every lock acquisition in this module recovers the guard via
//! [`PoisonError::into_inner`], because the guarded state is
//! structurally valid after any interrupted operation (see
//! `RoutingEngine::lock_contexts` for the full argument).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, PoisonError};

pub use srt_check::sync as sys;

use sys::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// SeqLock
// ---------------------------------------------------------------------------

/// A sequence lock over external state: coordinates bulk rewrites of a
/// set of relaxed atomics against coherent multi-value reads, without
/// ever blocking the writers of *individual* values.
///
/// The generation counter is odd while a rewrite is in flight, even and
/// stable otherwise. [`SeqLock::read`] retries its closure until an
/// even generation brackets the whole pass; [`SeqLock::write`] claims
/// odd, runs the closure, publishes at the next even value.
#[derive(Default)]
pub struct SeqLock {
    generation: AtomicU64,
}

impl SeqLock {
    /// A new lock at generation 0 (even: quiescent).
    pub const fn new() -> Self {
        SeqLock {
            generation: AtomicU64::new(0),
        }
    }

    /// Runs `body` until a pass is bracketed by one stable even
    /// generation — the result then reflects entirely-before or
    /// entirely-after state of any concurrent [`SeqLock::write`], never
    /// a torn mix.
    pub fn read<T>(&self, mut body: impl FnMut() -> T) -> T {
        loop {
            let before = self.generation.load(Ordering::SeqCst);
            if before & 1 == 1 {
                // A rewrite is in flight; wait it out.
                sys::spin_loop();
                continue;
            }
            let value = body();
            // Order the (relaxed) reads inside `body` before the
            // confirming generation load.
            sys::atomic::fence(Ordering::SeqCst);
            if self.generation.load(Ordering::SeqCst) == before {
                return value;
            }
            // A rewrite completed underneath us; take the pass again.
        }
    }

    /// Runs `body` as a claimed bulk rewrite: generation odd for its
    /// duration, published at the next even value. Concurrent writers
    /// serialize on the claim.
    pub fn write<R>(&self, body: impl FnOnce() -> R) -> R {
        let begun = self.claim();
        let out = body();
        self.release(begun);
        out
    }

    /// Claims the lock: flips the generation from even to odd, spinning
    /// out any concurrent rewriter. Returns the claimed (even)
    /// generation for [`SeqLock::release`].
    fn claim(&self) -> u64 {
        loop {
            let g = self.generation.load(Ordering::SeqCst);
            if g & 1 == 0
                && self
                    .generation
                    .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return g;
            }
            sys::spin_loop();
        }
    }

    /// Releases the lock: publishes the rewrite at the next even
    /// generation.
    fn release(&self, begun: u64) {
        self.generation.store(begun + 2, Ordering::SeqCst);
    }

    /// The current generation (model/test support: even means
    /// quiescent).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// **Deliberately broken** write for the checker's planted-bug
    /// suite: runs the rewrite *without claiming an odd generation*, so
    /// a concurrent [`SeqLock::read`] that completes before the final
    /// publication confirms against an unchanged generation and returns
    /// a torn mix. The seqlock model must catch this — it proves the
    /// explorer explores. Only exists under the checker cfg.
    #[cfg(srt_check)]
    pub fn write_unclaimed<R>(&self, body: impl FnOnce() -> R) -> R {
        let begun = self.generation.load(Ordering::SeqCst);
        let out = body();
        self.generation.store(begun + 2, Ordering::SeqCst);
        out
    }
}

// ---------------------------------------------------------------------------
// BoundedLru
// ---------------------------------------------------------------------------

/// One cache slot: the value plus its last-use stamp (updated under the
/// *read* lock, so hits stay concurrent).
struct LruEntry<V> {
    value: V,
    last_used: AtomicU64,
}

/// A capacity-bounded LRU map with lock-free-stamp recency: the engine's
/// per-target bounds cache (PR 8), generic over key and value.
///
/// * [`BoundedLru::get`] takes the read lock only — a hit refreshes the
///   entry's stamp from a monotone logical clock without writer
///   exclusion.
/// * [`BoundedLru::insert_and_trim`] adopts the entry *first* and trims
///   to capacity *second*, making `len <= capacity` structural at every
///   critical-section exit — the historical check-then-insert shape let
///   N concurrent misses each skip eviction and transiently overshoot
///   by N−1 (the PR 8 bug, now model-checked dead).
pub struct BoundedLru<K, V> {
    map: sys::RwLock<HashMap<K, LruEntry<V>>>,
    /// Monotone logical clock stamping uses (LRU order).
    clock: AtomicU64,
}

impl<K, V> Default for BoundedLru<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> BoundedLru<K, V> {
    /// A new empty cache.
    pub fn new() -> Self {
        BoundedLru {
            map: sys::RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
        }
    }
}

impl<K: Eq + Hash + Copy, V: Clone> BoundedLru<K, V> {
    fn read_map(&self) -> sys::RwLockReadGuard<'_, HashMap<K, LruEntry<V>>> {
        self.map.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_map(&self) -> sys::RwLockWriteGuard<'_, HashMap<K, LruEntry<V>>> {
        self.map.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks `key` up, refreshing its recency stamp on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let map = self.read_map();
        let entry = map.get(key)?;
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        entry.last_used.store(stamp, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// Adopts `(key, value)` (keeping a pre-existing entry for the key —
    /// concurrent duplicate computations converge on the first one in),
    /// then trims stalest-first to `capacity`. Returns the resident
    /// value and the number of evictions. The just-inserted entry is
    /// never the victim: it carries the newest stamp by construction
    /// (and callers clamp capacity to at least one).
    pub fn insert_and_trim(&self, key: K, value: V, capacity: usize) -> (V, u64) {
        let mut map = self.write_map();
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let resident = map
            .entry(key)
            .or_insert(LruEntry {
                value,
                last_used: AtomicU64::new(stamp),
            })
            .value
            .clone();
        let mut evicted = 0u64;
        while map.len() > capacity {
            // Evict the least recently used entry. A linear scan is
            // fine: eviction only happens once the (generous) capacity
            // is hit, and callers are already paying for the miss that
            // produced the value.
            let stale = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(&k, _)| k);
            match stale {
                Some(stale) => {
                    map.remove(&stale);
                    evicted += 1;
                }
                None => break,
            }
        }
        (resident, evicted)
    }

    /// **Deliberately broken** insert for the checker's planted-bug
    /// suite: the historical check-then-insert shape — decide whether
    /// trimming is needed *before* adopting the entry, in a separate
    /// lock tenure. Two concurrent misses both observe `len <
    /// capacity`, both skip eviction, and the cache transiently exceeds
    /// its bound — the LRU model must catch it. Only exists under the
    /// checker cfg.
    #[cfg(srt_check)]
    pub fn insert_check_then_act_for_models(&self, key: K, value: V, capacity: usize) -> V {
        let needs_evict = { self.read_map().len() >= capacity };
        if needs_evict {
            let mut map = self.write_map();
            let stale = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(&k, _)| k);
            if let Some(stale) = stale {
                map.remove(&stale);
            }
        }
        let mut map = self.write_map();
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        map.entry(key)
            .or_insert(LruEntry {
                value,
                last_used: AtomicU64::new(stamp),
            })
            .value
            .clone()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.read_map().is_empty()
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.write_map().clear();
    }

    /// Poisons the map's lock (test support for the poison-tolerance
    /// contract): panics while holding the write guard, inside
    /// `catch_unwind`.
    #[doc(hidden)]
    pub fn poison_for_tests(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.write_map();
            panic!("poisoning the bounded-lru map");
        }));
    }
}

// ---------------------------------------------------------------------------
// EpochCell
// ---------------------------------------------------------------------------

/// The pin/publish cell behind zero-downtime model swaps (PR 8): a
/// swappable `Arc` snapshot. Readers pin the live value once (a read
/// lock and an `Arc` clone) and never look back; writers replace the
/// pointer
/// under a momentary write lock. A pin is immutable and survives any
/// number of subsequent publishes; the pinned storage is freed when the
/// last pin drops.
pub struct EpochCell<T> {
    slot: sys::RwLock<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// A cell serving `value`.
    pub fn new(value: T) -> Self {
        EpochCell {
            slot: sys::RwLock::new(Arc::new(value)),
        }
    }

    fn read_slot(&self) -> sys::RwLockReadGuard<'_, Arc<T>> {
        // Poison-tolerant: the guarded value is a single `Arc`,
        // structurally valid after any interrupted operation.
        self.slot.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pins the live value: one read-lock acquisition plus one `Arc`
    /// clone.
    pub fn pin(&self) -> Arc<T> {
        Arc::clone(&self.read_slot())
    }

    /// Runs `f` on the live value without cloning the `Arc` (the read
    /// lock is held for the duration — keep `f` cheap).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.read_slot())
    }

    /// Publishes a successor: `f` sees the currently-live value (under
    /// the write lock, so concurrent publishers serialize) and returns
    /// the replacement plus a caller result. Expensive preparation
    /// belongs *outside* this call; `f` should only claim identity
    /// (e.g. the next epoch id) and wrap.
    pub fn publish_with<R>(&self, f: impl FnOnce(&Arc<T>) -> (Arc<T>, R)) -> R {
        let mut slot = self.slot.write().unwrap_or_else(PoisonError::into_inner);
        let (next, out) = f(&slot);
        *slot = next;
        out
    }

    /// Poisons the cell's lock (test support for the poison-tolerance
    /// contract): panics while holding the write guard, inside
    /// `catch_unwind`.
    #[doc(hidden)]
    pub fn poison_for_tests(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.slot.write();
            panic!("poisoning the epoch cell");
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqlock_roundtrip_and_generation_parity() {
        let lock = SeqLock::new();
        assert_eq!(lock.generation(), 0);
        lock.write(|| {});
        assert_eq!(lock.generation(), 2);
        assert_eq!(lock.read(|| 7), 7);
        assert_eq!(lock.generation() & 1, 0);
    }

    #[test]
    fn lru_insert_get_trim() {
        let lru: BoundedLru<u32, u64> = BoundedLru::new();
        assert!(lru.is_empty());
        let (v, ev) = lru.insert_and_trim(1, 10, 2);
        assert_eq!((v, ev), (10, 0));
        let (v, ev) = lru.insert_and_trim(2, 20, 2);
        assert_eq!((v, ev), (20, 0));
        // Refresh 1 so 2 is the eviction victim.
        assert_eq!(lru.get(&1), Some(10));
        let (v, ev) = lru.insert_and_trim(3, 30, 2);
        assert_eq!((v, ev), (30, 1));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&2), None);
        // Duplicate insert converges on the resident value.
        let (v, ev) = lru.insert_and_trim(1, 99, 2);
        assert_eq!((v, ev), (10, 0));
        lru.clear();
        assert!(lru.is_empty());
    }

    #[test]
    fn epoch_cell_pin_survives_publish() {
        let cell = EpochCell::new(1u64);
        let pin = cell.pin();
        let out = cell.publish_with(|live| (Arc::new(**live + 1), "published"));
        assert_eq!(out, "published");
        assert_eq!(*pin, 1);
        assert_eq!(*cell.pin(), 2);
        assert_eq!(cell.with(|v| *v), 2);
    }

    #[test]
    fn poison_is_tolerated() {
        let lru: BoundedLru<u32, u64> = BoundedLru::new();
        lru.insert_and_trim(1, 10, 4);
        lru.poison_for_tests();
        assert_eq!(lru.get(&1), Some(10));
        let cell = EpochCell::new(5u64);
        cell.poison_for_tests();
        assert_eq!(*cell.pin(), 5);
    }
}
