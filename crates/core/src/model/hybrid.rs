//! The Hybrid Model: classifier-gated combination of convolution and
//! learned estimation.

use crate::model::calibration::DominanceCalibration;
use crate::model::classifier::DependenceClassifier;
use crate::model::envelope::SupportEnvelope;
use crate::model::estimator::DistributionEstimator;
use crate::model::features::{pair_features, pair_features_view};
use serde::{Deserialize, Serialize};
use srt_dist::{
    convolve_bounded, convolve_bounded_into, ConvRoute, Histogram, HistogramBuf, HistogramPool,
    HistogramView,
};
use srt_graph::{EdgeId, RoadGraph};

/// What one combine step did — telemetry returned by
/// [`HybridModel::combine_into`] (and threaded through
/// `HybridCost::combine_pooled_traced` up to the engine's counters).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CombineOutcome {
    /// `true` when the classifier routed the step to the estimator arm.
    pub used_estimator: bool,
    /// The convolution route taken (`None` on the estimator arm).
    pub route: Option<ConvRoute>,
}

impl CombineOutcome {
    /// `true` when the step convolved on the shared-lattice fast route —
    /// what `EngineStats::lattice_fast_path` tallies.
    pub fn lattice_hit(self) -> bool {
        self.route.is_some_and(ConvRoute::lattice_hit)
    }
}

/// A fitted hybrid model: one estimator plus its gate classifier
/// ("an instance of the classifier is initialized for each estimation
/// model").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HybridModel {
    /// The distribution estimation model.
    pub estimator: DistributionEstimator,
    /// The convolution-vs-estimation gate.
    pub classifier: DependenceClassifier,
    /// Bucket budget for combined distributions.
    pub bins: usize,
    /// Measured dominance behaviour of the fitted combine operator
    /// (`None` for models trained before calibration existed, e.g. v1
    /// snapshots). Feeds the router's margin-dominance pruning.
    pub calibration: Option<DominanceCalibration>,
    /// Support-mass envelope of the estimator arm (`None` for models
    /// trained before envelopes existed, e.g. v1/v2 snapshots). Feeds
    /// the router's certified-envelope pruning bound.
    pub envelope: Option<SupportEnvelope>,
}

impl HybridModel {
    /// Combines the distribution of the path so far (`pre`, last edge
    /// `prev_edge`) with `next_edge`, letting the classifier pick the
    /// mechanism. Returns the combined distribution and whether the
    /// estimator was used.
    pub fn combine(
        &self,
        g: &RoadGraph,
        pre: &Histogram,
        prev_edge: EdgeId,
        next_edge: EdgeId,
        next_marginal: &Histogram,
    ) -> (Histogram, bool) {
        let features = pair_features(g, pre, prev_edge, next_edge, next_marginal);
        if self.classifier.use_estimation(&features) {
            (self.estimate(pre, next_marginal, &features), true)
        } else {
            (self.convolve(pre, next_marginal), false)
        }
    }

    /// The estimation arm: predicts over the known support
    /// `[pre.start + next.start, pre.end + next.end)`.
    pub fn estimate(
        &self,
        pre: &Histogram,
        next_marginal: &Histogram,
        features: &[f64],
    ) -> Histogram {
        let lo = pre.start() + next_marginal.start();
        let hi = pre.end() + next_marginal.end();
        self.estimator.predict(features, lo, hi)
    }

    /// The convolution arm (bucket-capped).
    pub fn convolve(&self, pre: &Histogram, next_marginal: &Histogram) -> Histogram {
        convolve_bounded(pre, next_marginal, self.bins)
            .expect("bounded convolution of valid histograms succeeds")
    }

    /// In-place twin of [`HybridModel::combine`]: gates on the classifier
    /// (through a pooled scratch row — no allocation on either backend)
    /// and writes the combined masses into `out`, raw in the
    /// [`HistogramBuf`] sense (one normalization pending). Promoting
    /// `out` is bit-identical to the value-returning form. Returns a
    /// [`CombineOutcome`] describing which arm (and convolution route)
    /// ran.
    // The argument list mirrors `combine` plus the output buffer and
    // scratch row; collapsing it into a params struct would churn every
    // routing call site for no clarity gain.
    #[allow(clippy::too_many_arguments)]
    pub fn combine_into(
        &self,
        g: &RoadGraph,
        pre: &HistogramView<'_>,
        prev_edge: EdgeId,
        next_edge: EdgeId,
        next_marginal: &Histogram,
        out: &mut HistogramBuf,
        pool: &mut HistogramPool,
    ) -> CombineOutcome {
        let features = pair_features_view(g, pre, prev_edge, next_edge, next_marginal);
        // Only the logistic backend needs a scratch row; the (default)
        // forest gate answers through the allocation-free class-scalar
        // query, keeping the pool counters a pure label-payload measure.
        let use_est = match self.classifier.backend() {
            crate::model::ClassifierBackend::Forest => self.classifier.use_estimation(&features),
            crate::model::ClassifierBackend::Logistic => {
                let mut scratch = pool.checkout_vec();
                let r = self.classifier.use_estimation_scratch(&features, &mut scratch);
                pool.checkin(scratch);
                r
            }
        };
        let route = if use_est {
            self.estimate_into(pre, next_marginal, &features, out);
            None
        } else {
            Some(self.convolve_into(pre, next_marginal, out, pool))
        };
        CombineOutcome {
            used_estimator: use_est,
            route,
        }
    }

    /// In-place twin of [`HybridModel::estimate`].
    pub fn estimate_into(
        &self,
        pre: &HistogramView<'_>,
        next_marginal: &Histogram,
        features: &[f64],
        out: &mut HistogramBuf,
    ) {
        let lo = pre.start() + next_marginal.start();
        let hi = pre.end() + next_marginal.end();
        self.estimator.predict_into(features, lo, hi, out);
    }

    /// In-place twin of [`HybridModel::convolve`]. Returns the
    /// [`ConvRoute`] the bounded convolution took.
    pub fn convolve_into(
        &self,
        pre: &HistogramView<'_>,
        next_marginal: &Histogram,
        out: &mut HistogramBuf,
        pool: &mut HistogramPool,
    ) -> ConvRoute {
        convolve_bounded_into(pre, &next_marginal.view(), self.bins, out, pool)
            .expect("bounded convolution of valid histograms succeeds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::classifier::ClassifierBackend;
    use crate::model::features::FEATURE_COUNT;
    use srt_graph::{EdgeAttrs, GraphBuilder, Point, RoadCategory};
    use srt_ml::dataset::Matrix;
    use srt_ml::forest::ForestConfig;

    fn tiny_graph() -> (RoadGraph, EdgeId, EdgeId) {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(10.0, 56.0));
        let c = b.add_node(Point::new(10.01, 56.0));
        let d = b.add_node(Point::new(10.02, 56.0));
        let e1 = b.add_edge(a, c, EdgeAttrs::new(700.0, RoadCategory::Primary, 80.0));
        let e2 = b.add_edge(c, d, EdgeAttrs::new(400.0, RoadCategory::Primary, 80.0));
        (b.build(), e1, e2)
    }

    /// A hybrid model whose classifier always answers `label`.
    fn fixed_model(bins: usize, label: usize) -> HybridModel {
        let n = 60;
        let mut xs = Vec::new();
        let mut est_targets = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let mut f = vec![0.0; FEATURE_COUNT];
            f[0] = i as f64;
            xs.push(f);
            // Estimator target: all mass in the last bucket (distinctive).
            let mut t = vec![0.0; bins];
            t[bins - 1] = 1.0;
            est_targets.push(t);
            labels.push(label);
        }
        let x = Matrix::from_rows(&xs).unwrap();
        let y = Matrix::from_rows(&est_targets).unwrap();
        let cfg = ForestConfig {
            n_trees: 5,
            ..ForestConfig::default()
        };
        let estimator = DistributionEstimator::fit(&x, &y, bins, &cfg, 1).unwrap();
        // Constant labels: tree is a single leaf predicting `label`.
        let classifier =
            DependenceClassifier::fit(&x, &labels, ClassifierBackend::Forest, &cfg, 1).unwrap();
        HybridModel {
            estimator,
            classifier,
            bins,
            calibration: None,
            envelope: None,
        }
    }

    #[test]
    fn convolution_arm_matches_direct_convolution() {
        let (g, e1, e2) = tiny_graph();
        let model = fixed_model(8, 0); // always convolve
        let pre = Histogram::new(30.0, 5.0, vec![0.5, 0.5]).unwrap();
        let nm = Histogram::new(18.0, 4.0, vec![0.25; 4]).unwrap();
        let (h, used_est) = model.combine(&g, &pre, e1, e2, &nm);
        assert!(!used_est);
        let direct = convolve_bounded(&pre, &nm, 8).unwrap();
        assert_eq!(h, direct);
    }

    #[test]
    fn estimation_arm_uses_the_known_support() {
        let (g, e1, e2) = tiny_graph();
        let model = fixed_model(8, 1); // always estimate
        let pre = Histogram::new(30.0, 5.0, vec![0.5, 0.5]).unwrap();
        let nm = Histogram::new(18.0, 4.0, vec![0.25; 4]).unwrap();
        let (h, used_est) = model.combine(&g, &pre, e1, e2, &nm);
        assert!(used_est);
        assert!((h.start() - 48.0).abs() < 1e-12); // 30 + 18
        assert!((h.end() - 74.0).abs() < 1e-12); // 40 + 34
        assert_eq!(h.num_bins(), 8);
        // The trained estimator puts its mass late.
        assert!(h.probs()[7] > 0.5);
    }

    #[test]
    fn combined_mass_is_one_either_way() {
        let (g, e1, e2) = tiny_graph();
        for label in [0, 1] {
            let model = fixed_model(6, label);
            let pre = Histogram::new(10.0, 2.0, vec![0.2, 0.3, 0.5]).unwrap();
            let nm = Histogram::new(5.0, 1.0, vec![0.5, 0.5]).unwrap();
            let (h, _) = model.combine(&g, &pre, e1, e2, &nm);
            assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(h.num_bins() <= 6);
        }
    }
}
