//! Margin calibration for dominance pruning under the hybrid cost model.
//!
//! First-order dominance pruning is exact when the combine operator is
//! *monotone*: if prefix `A` dominates prefix `B`, every extension of `A`
//! dominates the same extension of `B`. Convolution is monotone; the
//! learned estimator arm is not — its forest can move probability mass
//! around the (shared) output support and thereby *invert* an input
//! dominance relation by some amount in CDF space.
//!
//! This module measures that amount. At training time we probe the fitted
//! combine operator with dominance-ordered prefix pairs `(pre,
//! pre.shift(δ))` — the shifted copy is strictly dominated — and record
//! how far the outputs violate the input order:
//!
//! ```text
//! violation = max_x [ cdf(combine(pre', e)) (x) − cdf(combine(pre, e)) (x) ]₊
//! ```
//!
//! Probes use both raw edge marginals and *accumulated* prefixes (the
//! marginal combined with a following edge, yielding the wider,
//! smoother supports router labels actually carry), so the measured
//! modulus reflects the operator's behaviour on realistic inputs.
//!
//! The calibrated margin `eps` is the largest observed violation times a
//! safety factor. The router's margin-dominance mode then only prunes a
//! label that is behind by at least `eps` everywhere the race is open
//! (`srt_dist::dominance::dominates_with_margin`), so a *single* combine
//! step was never observed to close the gap. Note the scope of the
//! claim: `eps` is a **one-step** inversion modulus. A pruned label's
//! completion undergoes several combines, and in principle violations
//! could compound beyond `eps` over a long estimator-gated chain — no
//! a-priori modulus exists for a black-box estimator, so an end-to-end
//! *proof* is only available for the convolution-gated mode. The
//! end-to-end drift of margin mode is instead *verified* empirically:
//! the A1 ablation and the exhaustive oracle differential suite assert
//! on every run that the realized drift stays within the persisted
//! `eps` (a failure there is the signal to widen the safety factor or
//! probe set, not a soundness regression of the gated mode).

use crate::model::hybrid::HybridModel;
use serde::{Deserialize, Serialize};
use srt_dist::Histogram;
use srt_graph::{EdgeId, RoadGraph};

/// Safety factor applied to the worst observed violation when deriving
/// the pruning margin. Chosen > 1 to absorb both probe-set sampling
/// error and mild multi-step compounding (see the module docs).
const SAFETY_FACTOR: f64 = 2.0;

/// Shift fractions (of the prefix bucket width) used to generate the
/// dominance-ordered probe inputs.
const SHIFT_FRACTIONS: [f64; 3] = [0.25, 0.5, 1.0];

/// Default number of probe pairs when the caller has more available.
pub const DEFAULT_PROBE_PAIRS: usize = 64;

/// The measured dominance behaviour of a fitted combine operator.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DominanceCalibration {
    /// Pruning margin: `SAFETY_FACTOR ×` the worst observed violation.
    /// `0` means every probe combined monotonically (e.g. the classifier
    /// always gated to convolution).
    pub margin_eps: f64,
    /// Measured Lipschitz-style constant: worst observed
    /// `violation / input CDF gap` across probes. Describes how sharply
    /// the operator can react to a dominance perturbation.
    pub lipschitz: f64,
    /// Largest raw CDF inversion observed (before the safety factor).
    pub max_violation: f64,
    /// Number of `(pair, shift)` probes measured.
    pub n_probes: usize,
}

impl DominanceCalibration {
    /// Appends the binary snapshot of the calibration to `buf`.
    pub fn write_bytes(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_f64_le(self.margin_eps);
        buf.put_f64_le(self.lipschitz);
        buf.put_f64_le(self.max_violation);
        buf.put_u32_le(self.n_probes as u32);
    }

    /// Decodes a calibration written by
    /// [`DominanceCalibration::write_bytes`], advancing `data`.
    pub fn read_bytes(data: &mut &[u8]) -> Result<Self, crate::error::CoreError> {
        use bytes::Buf;
        if data.remaining() < 28 {
            return Err(crate::error::CoreError::Ml(srt_ml::MlError::Corrupt(
                "truncated dominance calibration".into(),
            )));
        }
        let margin_eps = data.get_f64_le();
        let lipschitz = data.get_f64_le();
        let max_violation = data.get_f64_le();
        let n_probes = data.get_u32_le() as usize;
        if !(margin_eps.is_finite() && lipschitz.is_finite() && max_violation.is_finite())
            || margin_eps < 0.0
            || max_violation < 0.0
        {
            return Err(crate::error::CoreError::Ml(srt_ml::MlError::Corrupt(
                format!("implausible dominance calibration eps={margin_eps}"),
            )));
        }
        Ok(DominanceCalibration {
            margin_eps,
            lipschitz,
            max_violation,
            n_probes,
        })
    }
}

/// `max_x (cdf_a(x) − cdf_b(x))` over the union of both bucket lattices
/// (exact: the difference is piecewise linear between lattice points).
fn sup_cdf_gap(a: &Histogram, b: &Histogram) -> f64 {
    let mut gap: f64 = 0.0;
    let mut visit = |x: f64| gap = gap.max(a.cdf(x) - b.cdf(x));
    for i in 0..=a.num_bins() {
        visit(a.start() + i as f64 * a.width());
    }
    for j in 0..=b.num_bins() {
        visit(b.start() + j as f64 * b.width());
    }
    gap
}

/// Probes the fitted combine operator of `model` with dominance-ordered
/// prefix pairs drawn from `pairs` (consecutive edges with their
/// marginals) and measures the worst CDF inversion it produces.
///
/// `pairs` should be held-out pairs the model was not fitted on; only the
/// first [`DEFAULT_PROBE_PAIRS`] are used.
pub fn calibrate<'a>(
    model: &HybridModel,
    g: &RoadGraph,
    pairs: impl IntoIterator<Item = (EdgeId, EdgeId, &'a Histogram, &'a Histogram)>,
) -> DominanceCalibration {
    let mut max_violation: f64 = 0.0;
    let mut lipschitz: f64 = 0.0;
    let mut n_probes = 0usize;

    for (e1, e2, marg1, marg2) in pairs.into_iter().take(DEFAULT_PROBE_PAIRS) {
        // Two prefix shapes per pair, each with its combined output: the
        // raw marginal (whose combine result doubles as the second,
        // *accumulated* prefix — the wider support router labels carry
        // mid-search).
        let accumulated = model.combine(g, marg1, e1, e2, marg2).0;
        let reaccumulated = model.combine(g, &accumulated, e1, e2, marg2).0;
        let probes = [(marg1, &accumulated), (&accumulated, &reaccumulated)];
        for (pre, base) in probes {
            for frac in SHIFT_FRACTIONS {
                let delta = pre.width() * frac;
                let shifted = pre.shift(delta);
                // `pre` strictly dominates `shifted`; the input gap is
                // the sup-norm CDF distance between them.
                let input_gap = sup_cdf_gap(pre, &shifted);
                let (out_shifted, _) = model.combine(g, &shifted, e1, e2, marg2);
                // How far does the dominated input's output get *ahead*?
                let violation = sup_cdf_gap(&out_shifted, base).max(0.0);
                max_violation = max_violation.max(violation);
                if input_gap > 1e-9 {
                    lipschitz = lipschitz.max(violation / input_gap);
                }
                n_probes += 1;
            }
        }
    }

    DominanceCalibration {
        margin_eps: SAFETY_FACTOR * max_violation,
        lipschitz,
        max_violation,
        n_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::training::{train_hybrid, TrainingConfig};
    use srt_ml::forest::ForestConfig;
    use srt_synth::{SyntheticWorld, WorldConfig};
    use std::sync::OnceLock;

    fn fixture() -> &'static (SyntheticWorld, HybridModel) {
        static FIX: OnceLock<(SyntheticWorld, HybridModel)> = OnceLock::new();
        FIX.get_or_init(|| {
            let world = SyntheticWorld::build(WorldConfig::tiny());
            let cfg = TrainingConfig {
                train_pairs: 120,
                test_pairs: 40,
                min_obs: 5,
                bins: 10,
                forest: ForestConfig {
                    n_trees: 6,
                    ..ForestConfig::default()
                },
                ..TrainingConfig::default()
            };
            let (model, _) = train_hybrid(&world, &cfg).expect("fixture trains");
            (world, model)
        })
    }

    #[test]
    fn training_attaches_a_calibration() {
        let (_, model) = fixture();
        let cal = model.calibration.expect("training calibrates");
        assert!(cal.n_probes > 0);
        assert!(cal.margin_eps >= 0.0 && cal.margin_eps.is_finite());
        assert!(cal.margin_eps >= SAFETY_FACTOR * cal.max_violation - 1e-12);
        assert!(cal.lipschitz >= 0.0 && cal.lipschitz.is_finite());
    }

    #[test]
    fn pure_convolution_calibrates_to_zero() {
        // A probe set the classifier provably convolves cannot produce a
        // violation: convolution is monotone. Emulate by calibrating a
        // model against pairs and asserting violations only come from the
        // estimator arm — on an always-convolve synthetic check the
        // violation is exactly zero.
        let (world, model) = fixture();
        let g = &world.graph;
        // Build a variant whose gate never fires by raising the decision
        // threshold beyond 1: every combine degenerates to convolution.
        let mut conv_only = model.clone();
        conv_only.classifier.threshold = 1.1;
        let pairs: Vec<_> = g
            .edge_pairs()
            .take(8)
            .map(|(e1, e2)| {
                (
                    e1,
                    e2,
                    world.ground_truth.marginal(e1),
                    world.ground_truth.marginal(e2),
                )
            })
            .collect();
        let cal = calibrate(&conv_only, g, pairs);
        assert_eq!(cal.max_violation, 0.0, "convolution is monotone");
        assert_eq!(cal.margin_eps, 0.0);
    }

    #[test]
    fn calibration_round_trips_through_bytes() {
        let cal = DominanceCalibration {
            margin_eps: 0.125,
            lipschitz: 3.5,
            max_violation: 0.0625,
            n_probes: 192,
        };
        let mut buf = bytes::BytesMut::new();
        cal.write_bytes(&mut buf);
        let mut slice = &buf[..];
        let back = DominanceCalibration::read_bytes(&mut slice).unwrap();
        assert_eq!(back, cal);
        assert!(slice.is_empty());

        // Truncated and non-finite payloads are rejected.
        assert!(DominanceCalibration::read_bytes(&mut &buf[..10]).is_err());
        let mut bad = buf.to_vec();
        bad[..8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(DominanceCalibration::read_bytes(&mut &bad[..]).is_err());
    }

    #[test]
    fn sup_gap_is_the_shift_amount_for_uniform() {
        let h = Histogram::new(0.0, 1.0, vec![0.25; 4]).unwrap();
        // Shifting a uniform CDF right by half a bucket lowers it by
        // 0.125 at the lattice points.
        let g = sup_cdf_gap(&h, &h.shift(0.5));
        assert!((g - 0.125).abs() < 1e-12);
        assert_eq!(sup_cdf_gap(&h, &h), 0.0);
    }
}
