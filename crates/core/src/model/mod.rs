//! The Hybrid Model: pair features, distribution estimator, dependence
//! classifier, the training pipeline, and the two post-training
//! certificates that keep pruning sound under the learned estimator —
//! the dominance-margin calibration and the support-mass envelope.

pub mod calibration;
pub mod classifier;
pub mod envelope;
pub mod estimator;
pub mod features;
pub mod hybrid;
pub mod io;
pub mod training;

pub use calibration::DominanceCalibration;
pub use envelope::SupportEnvelope;
pub use classifier::{ClassifierBackend, DependenceClassifier};
pub use estimator::DistributionEstimator;
pub use features::{pair_features, pair_features_partial, pair_features_view, FEATURE_COUNT};
pub use hybrid::{CombineOutcome, HybridModel};
