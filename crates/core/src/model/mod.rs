//! The Hybrid Model: pair features, distribution estimator, dependence
//! classifier, and the training pipeline.

pub mod classifier;
pub mod estimator;
pub mod features;
pub mod hybrid;
pub mod io;
pub mod training;

pub use classifier::{ClassifierBackend, DependenceClassifier};
pub use estimator::DistributionEstimator;
pub use features::{pair_features, FEATURE_COUNT};
pub use hybrid::HybridModel;
