//! Binary snapshot format for trained [`HybridModel`]s.
//!
//! Train once, ship the model: a versioned, magic-tagged container around
//! the estimator forest and the gate classifier, suitable for embedding
//! next to a serialized road network (`srt_graph::io`). No serde format
//! crate exists in this dependency set, so the layout is hand-rolled on
//! `bytes` with bounds-checked decoding throughout.
//!
//! ```text
//! magic   u32   0x53524D4F ("SRMO")
//! version u32   3
//! bins    u32
//! estimator  (see DistributionEstimator::write_bytes)
//! classifier (see DependenceClassifier::write_bytes)
//! calib_flag u8   (v2+) 0 = absent, 1 = present
//! calibration     (v2+, if present; see DominanceCalibration::write_bytes)
//! env_flag   u8   (v3+) 0 = absent, 1 = present
//! envelope        (v3+, if present; see SupportEnvelope::write_bytes)
//! ```
//!
//! Version 1 snapshots (no calibration trailer) and version 2 snapshots
//! (no envelope trailer) still decode; they yield models with
//! `calibration: None` / `envelope: None` respectively, for which the
//! router's margin dominance and certified-envelope bound degenerate to
//! their most conservative forms.

use crate::error::CoreError;
use crate::model::calibration::DominanceCalibration;
use crate::model::classifier::DependenceClassifier;
use crate::model::envelope::SupportEnvelope;
use crate::model::estimator::DistributionEstimator;
use crate::model::hybrid::HybridModel;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x5352_4D4F;
const VERSION: u32 = 3;
/// Oldest snapshot version this decoder still accepts.
const MIN_VERSION: u32 = 1;

/// Serializes a trained hybrid model.
pub fn to_bytes(model: &HybridModel) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(model.bins as u32);
    model.estimator.write_bytes(&mut buf);
    model.classifier.write_bytes(&mut buf);
    match &model.calibration {
        Some(cal) => {
            buf.put_u8(1);
            cal.write_bytes(&mut buf);
        }
        None => buf.put_u8(0),
    }
    match &model.envelope {
        Some(env) => {
            buf.put_u8(1);
            env.write_bytes(&mut buf);
        }
        None => buf.put_u8(0),
    }
    buf.freeze()
}

/// Deserializes a hybrid model snapshot (current, v2 or v1 format).
///
/// # Errors
/// [`CoreError::Ml`] wrapping a `Corrupt` error on malformed payloads.
pub fn from_bytes(mut data: &[u8]) -> Result<HybridModel, CoreError> {
    let corrupt = |msg: String| CoreError::Ml(srt_ml::MlError::Corrupt(msg));
    if data.remaining() < 12 {
        return Err(corrupt("truncated model header".into()));
    }
    let magic = data.get_u32_le();
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let version = data.get_u32_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(corrupt(format!("unsupported model version {version}")));
    }
    let bins = data.get_u32_le() as usize;
    let estimator = DistributionEstimator::read_bytes(&mut data)?;
    let classifier = DependenceClassifier::read_bytes(&mut data)?;
    if estimator.bins() != bins {
        return Err(corrupt(format!(
            "container bins {bins} disagree with estimator bins {}",
            estimator.bins()
        )));
    }
    let calibration = if version >= 2 {
        if data.remaining() < 1 {
            return Err(corrupt("truncated calibration flag".into()));
        }
        match data.get_u8() {
            0 => None,
            1 => Some(DominanceCalibration::read_bytes(&mut data)?),
            flag => return Err(corrupt(format!("bad calibration flag {flag}"))),
        }
    } else {
        None
    };
    let envelope = if version >= 3 {
        if data.remaining() < 1 {
            return Err(corrupt("truncated envelope flag".into()));
        }
        match data.get_u8() {
            0 => None,
            1 => Some(SupportEnvelope::read_bytes(&mut data)?),
            flag => return Err(corrupt(format!("bad envelope flag {flag}"))),
        }
    } else {
        None
    };
    if !data.is_empty() {
        return Err(corrupt(format!("{} trailing bytes", data.len())));
    }
    Ok(HybridModel {
        estimator,
        classifier,
        bins,
        calibration,
        envelope,
    })
}

/// Writes a model snapshot to `path` (the file a serving process
/// re-reads on `POST /reload`).
///
/// # Errors
/// [`CoreError::Io`] on any filesystem failure.
pub fn write_file(path: impl AsRef<std::path::Path>, model: &HybridModel) -> Result<(), CoreError> {
    let path = path.as_ref();
    std::fs::write(path, to_bytes(model))
        .map_err(|e| CoreError::Io(format!("writing {}: {e}", path.display())))
}

/// Reads and decodes a model snapshot from `path`.
///
/// # Errors
/// [`CoreError::Io`] on filesystem failure, [`CoreError::Ml`] on a
/// corrupt payload (same contract as [`from_bytes`]).
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<HybridModel, CoreError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| CoreError::Io(format!("reading {}: {e}", path.display())))?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::classifier::ClassifierBackend;
    use crate::model::training::{train_hybrid, TrainingConfig};
    use srt_ml::forest::ForestConfig;
    use srt_synth::{SyntheticWorld, WorldConfig};
    use std::sync::OnceLock;

    fn world() -> &'static SyntheticWorld {
        static W: OnceLock<SyntheticWorld> = OnceLock::new();
        W.get_or_init(|| SyntheticWorld::build(WorldConfig::tiny()))
    }

    fn training(backend: ClassifierBackend) -> TrainingConfig {
        TrainingConfig {
            train_pairs: 120,
            test_pairs: 40,
            min_obs: 5,
            bins: 10,
            classifier_backend: backend,
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        }
    }

    #[test]
    fn forest_backed_model_round_trips() {
        let (model, _) = train_hybrid(world(), &training(ClassifierBackend::Forest)).unwrap();
        let bytes = to_bytes(&model);
        let model2 = from_bytes(&bytes).unwrap();
        assert_eq!(model2.bins, model.bins);
        // The dominance calibration (margin eps et al.) survives the trip.
        assert!(model.calibration.is_some());
        assert_eq!(model2.calibration, model.calibration);
        // So does the support-mass envelope.
        assert!(model.envelope.is_some());
        assert_eq!(model2.envelope, model.envelope);

        // Identical predictions on a probe feature vector.
        let mut f = vec![0.0; crate::model::features::FEATURE_COUNT];
        f[0] = 60.0;
        f[10] = 30.0;
        assert_eq!(
            model.estimator.predict_masses(&f),
            model2.estimator.predict_masses(&f)
        );
        assert_eq!(
            model.classifier.prob_dependent(&f),
            model2.classifier.prob_dependent(&f)
        );
    }

    #[test]
    fn logistic_backed_model_round_trips() {
        let (model, _) = train_hybrid(world(), &training(ClassifierBackend::Logistic)).unwrap();
        let model2 = from_bytes(&to_bytes(&model)).unwrap();
        let mut f = vec![0.0; crate::model::features::FEATURE_COUNT];
        f[19] = 120.0;
        assert_eq!(
            model.classifier.prob_dependent(&f),
            model2.classifier.prob_dependent(&f)
        );
        assert_eq!(model2.classifier.backend(), ClassifierBackend::Logistic);
    }

    #[test]
    fn version_one_snapshots_still_decode() {
        use bytes::BufMut;
        let (model, _) = train_hybrid(world(), &training(ClassifierBackend::Forest)).unwrap();
        // Hand-assemble the v1 layout: header + estimator + classifier,
        // no calibration trailer.
        let mut buf = bytes::BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(1);
        buf.put_u32_le(model.bins as u32);
        model.estimator.write_bytes(&mut buf);
        model.classifier.write_bytes(&mut buf);
        let legacy = from_bytes(&buf).unwrap();
        assert_eq!(legacy.bins, model.bins);
        assert!(legacy.calibration.is_none(), "v1 has no calibration");
        assert!(legacy.envelope.is_none(), "v1 has no envelope");
        // A v1 payload with a trailer is rejected (v1 never wrote one).
        buf.put_u8(0);
        assert!(from_bytes(&buf).is_err());
    }

    #[test]
    fn version_two_snapshots_still_decode() {
        use bytes::BufMut;
        let (model, _) = train_hybrid(world(), &training(ClassifierBackend::Forest)).unwrap();
        // Hand-assemble the v2 layout: header + estimator + classifier +
        // calibration trailer, no envelope trailer.
        let mut buf = bytes::BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(2);
        buf.put_u32_le(model.bins as u32);
        model.estimator.write_bytes(&mut buf);
        model.classifier.write_bytes(&mut buf);
        buf.put_u8(1);
        model.calibration.as_ref().unwrap().write_bytes(&mut buf);
        let legacy = from_bytes(&buf).unwrap();
        assert_eq!(legacy.bins, model.bins);
        assert_eq!(legacy.calibration, model.calibration, "v2 keeps its calibration");
        assert!(legacy.envelope.is_none(), "v2 has no envelope");
        // A v2 payload with a trailer is rejected (v2 never wrote one).
        buf.put_u8(0);
        assert!(from_bytes(&buf).is_err());
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let (model, _) = train_hybrid(world(), &training(ClassifierBackend::Forest)).unwrap();
        let bytes = to_bytes(&model);

        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(from_bytes(&bad).is_err());

        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert!(from_bytes(&bad).is_err());

        // Truncations at many offsets.
        for cut in [0, 8, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }

        // Trailing garbage.
        let mut bad = bytes.to_vec();
        bad.push(0);
        assert!(from_bytes(&bad).is_err());
    }

    #[test]
    fn routed_answers_survive_the_round_trip() {
        use crate::cost::{CombinePolicy, HybridCost};
        use crate::routing::{BudgetRouter, RouterConfig};
        use srt_synth::{DistanceCategory, QueryGenerator};

        let (model, _) = train_hybrid(world(), &training(ClassifierBackend::Forest)).unwrap();
        let model2 = from_bytes(&to_bytes(&model)).unwrap();

        let w = world();
        let cost1 = HybridCost::from_ground_truth(w, &model, CombinePolicy::Hybrid);
        let cost2 = HybridCost::from_ground_truth(w, &model2, CombinePolicy::Hybrid);
        let r1 = BudgetRouter::new(&cost1, RouterConfig::default());
        let r2 = BudgetRouter::new(&cost2, RouterConfig::default());

        let mut qg = QueryGenerator::new(31);
        for q in qg.generate(&w.graph, &w.model, DistanceCategory::ZeroToOne, 4) {
            let a = r1.route(q.source, q.target, q.budget_s, None);
            let b = r2.route(q.source, q.target, q.budget_s, None);
            assert_eq!(a.probability, b.probability);
        }
    }
}
