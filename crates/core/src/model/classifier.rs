//! The convolution-vs-estimation gate.
//!
//! "A binary classifier that determines if we should use convolution or
//! estimation at a specific intersection." Labels come from the ground
//! truth: a pair is positive (use estimation) when its true sum diverges
//! from the convolution of its marginals. Two backends are provided: a
//! random-forest classifier (default) and logistic regression over
//! standardized features (cheaper, used in ablations).

use crate::error::CoreError;
use crate::model::features::FEATURE_COUNT;
use serde::{Deserialize, Serialize};
use srt_ml::dataset::Matrix;
use srt_ml::forest::{ForestConfig, RandomForestClassifier};
use srt_ml::linear::{LogisticConfig, LogisticRegression};
use srt_ml::scaler::StandardScaler;

/// Which learner backs the gate.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ClassifierBackend {
    /// Random forest over raw features (default).
    Forest,
    /// Logistic regression over standardized features.
    Logistic,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Inner {
    Forest(RandomForestClassifier),
    Logistic {
        scaler: StandardScaler,
        model: LogisticRegression,
    },
}

/// A fitted dependence classifier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DependenceClassifier {
    inner: Inner,
    /// Decision threshold on `P(dependent)`.
    pub threshold: f64,
}

impl DependenceClassifier {
    /// Fits the gate on pair features and dependence labels
    /// (`1` = dependent = use estimation).
    pub fn fit(
        features: &Matrix,
        labels: &[usize],
        backend: ClassifierBackend,
        forest_cfg: &ForestConfig,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if features.cols() != FEATURE_COUNT {
            return Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch {
                expected: FEATURE_COUNT,
                found: features.cols(),
            }));
        }
        let inner = match backend {
            ClassifierBackend::Forest => Inner::Forest(RandomForestClassifier::fit(
                features, labels, 2, forest_cfg, seed,
            )?),
            ClassifierBackend::Logistic => {
                let (scaler, scaled) = StandardScaler::fit_transform(features)?;
                let model = LogisticRegression::fit(&scaled, labels, &LogisticConfig::default())?;
                Inner::Logistic { scaler, model }
            }
        };
        Ok(DependenceClassifier {
            inner,
            threshold: 0.5,
        })
    }

    /// `P(dependent)` — probability that estimation should replace
    /// convolution at this intersection.
    pub fn prob_dependent(&self, features: &[f64]) -> f64 {
        match &self.inner {
            // The class-scalar query allocates nothing and is
            // bit-identical to `predict_proba_row(features)[1]`.
            Inner::Forest(f) => f.predict_proba_class(features, 1),
            Inner::Logistic { scaler, model } => {
                let mut row = features.to_vec();
                scaler.transform_row(&mut row);
                model.predict_proba_row(&row)
            }
        }
    }

    /// [`DependenceClassifier::prob_dependent`] through a caller-provided
    /// scratch row, so the hot combine loop queries the gate without any
    /// allocation on either backend. Bit-identical to the plain form.
    pub fn prob_dependent_scratch(&self, features: &[f64], scratch: &mut Vec<f64>) -> f64 {
        match &self.inner {
            Inner::Forest(f) => f.predict_proba_class(features, 1),
            Inner::Logistic { scaler, model } => {
                scratch.clear();
                scratch.extend_from_slice(features);
                scaler.transform_row(scratch);
                model.predict_proba_row(scratch)
            }
        }
    }

    /// The gate decision: `true` = use the estimation model.
    pub fn use_estimation(&self, features: &[f64]) -> bool {
        self.prob_dependent(features) >= self.threshold
    }

    /// [`DependenceClassifier::use_estimation`] through a caller-provided
    /// scratch row (see [`DependenceClassifier::prob_dependent_scratch`]).
    pub fn use_estimation_scratch(&self, features: &[f64], scratch: &mut Vec<f64>) -> bool {
        self.prob_dependent_scratch(features, scratch) >= self.threshold
    }

    /// Bounds on `P(dependent)` over *every* completion of the unknown
    /// (`None`) features. For the forest backend the bounds come from an
    /// interval walk of each tree
    /// ([`srt_ml::forest::RandomForestClassifier::predict_proba_bounds_row`]);
    /// the logistic backend has unbounded feature support, so any unknown
    /// feature widens the bounds to `[0, 1]`.
    pub fn prob_dependent_bounds(&self, features: &[Option<f64>]) -> (f64, f64) {
        match &self.inner {
            Inner::Forest(f) => {
                let (lo, hi) = f.predict_proba_bounds_row(features);
                (lo[1], hi[1])
            }
            Inner::Logistic { .. } => {
                if features.iter().all(Option::is_some) {
                    let row: Vec<f64> = features.iter().map(|f| f.unwrap()).collect();
                    let p = self.prob_dependent(&row);
                    (p, p)
                } else {
                    (0.0, 1.0)
                }
            }
        }
    }

    /// `true` when the gate provably answers *convolution* no matter what
    /// values the unknown features take — the per-pair certificate behind
    /// the router's convolution-gated dominance pruning.
    pub fn certifies_convolution(&self, features: &[Option<f64>]) -> bool {
        self.prob_dependent_bounds(features).1 < self.threshold
    }

    /// The backend in use (diagnostic).
    pub fn backend(&self) -> ClassifierBackend {
        match &self.inner {
            Inner::Forest(_) => ClassifierBackend::Forest,
            Inner::Logistic { .. } => ClassifierBackend::Logistic,
        }
    }

    /// Appends the binary snapshot of the gate to `buf`.
    pub fn write_bytes(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_f64_le(self.threshold);
        match &self.inner {
            Inner::Forest(f) => {
                buf.put_u8(0);
                f.write_bytes(buf);
            }
            Inner::Logistic { scaler, model } => {
                buf.put_u8(1);
                scaler.write_bytes(buf);
                model.write_bytes(buf);
            }
        }
    }

    /// Decodes a gate written by [`DependenceClassifier::write_bytes`],
    /// advancing `data`.
    pub fn read_bytes(data: &mut &[u8]) -> Result<Self, CoreError> {
        use bytes::Buf;
        let corrupt = |msg: &str| CoreError::Ml(srt_ml::MlError::Corrupt(msg.into()));
        if data.remaining() < 9 {
            return Err(corrupt("truncated classifier header"));
        }
        let threshold = data.get_f64_le();
        if !threshold.is_finite() {
            return Err(corrupt("classifier threshold must be finite"));
        }
        let tag = data.get_u8();
        let inner = match tag {
            0 => Inner::Forest(RandomForestClassifier::read_bytes(data)?),
            1 => {
                let scaler = StandardScaler::read_bytes(data)?;
                let model = LogisticRegression::read_bytes(data)?;
                Inner::Logistic { scaler, model }
            }
            other => {
                return Err(CoreError::Ml(srt_ml::MlError::Corrupt(format!(
                    "unknown classifier backend tag {other}"
                ))))
            }
        };
        Ok(DependenceClassifier { inner, threshold })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dependence driven by the turn-angle feature (index 19).
    fn toy_training(n: usize) -> (Matrix, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let mut f = vec![0.0; FEATURE_COUNT];
            let angle = (i % 18) as f64 * 10.0;
            f[19] = angle;
            f[0] = 50.0 + (i % 7) as f64;
            xs.push(f);
            ys.push(usize::from(angle > 80.0));
        }
        (Matrix::from_rows(&xs).unwrap(), ys)
    }

    fn forest_cfg() -> ForestConfig {
        ForestConfig {
            n_trees: 15,
            ..ForestConfig::default()
        }
    }

    #[test]
    fn forest_backend_learns_the_gate() {
        let (x, y) = toy_training(180);
        let c =
            DependenceClassifier::fit(&x, &y, ClassifierBackend::Forest, &forest_cfg(), 1).unwrap();
        assert_eq!(c.backend(), ClassifierBackend::Forest);
        let mut f = vec![0.0; FEATURE_COUNT];
        f[19] = 170.0;
        assert!(c.use_estimation(&f));
        f[19] = 10.0;
        assert!(!c.use_estimation(&f));
    }

    #[test]
    fn logistic_backend_learns_the_gate() {
        let (x, y) = toy_training(180);
        let c =
            DependenceClassifier::fit(&x, &y, ClassifierBackend::Logistic, &forest_cfg(), 1).unwrap();
        assert_eq!(c.backend(), ClassifierBackend::Logistic);
        let mut f = vec![0.0; FEATURE_COUNT];
        f[19] = 170.0;
        f[0] = 53.0;
        assert!(c.use_estimation(&f));
        f[19] = 0.0;
        assert!(!c.use_estimation(&f));
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (x, y) = toy_training(100);
        for backend in [ClassifierBackend::Forest, ClassifierBackend::Logistic] {
            let c = DependenceClassifier::fit(&x, &y, backend, &forest_cfg(), 2).unwrap();
            for i in 0..10 {
                let mut f = vec![0.0; FEATURE_COUNT];
                f[19] = i as f64 * 20.0;
                let p = c.prob_dependent(&f);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn threshold_shifts_the_decision() {
        let (x, y) = toy_training(100);
        let mut c =
            DependenceClassifier::fit(&x, &y, ClassifierBackend::Forest, &forest_cfg(), 3).unwrap();
        let mut f = vec![0.0; FEATURE_COUNT];
        f[19] = 90.0;
        // Threshold 0 accepts any probability; a threshold above 1 can
        // never be met. Both exercise the gate semantics independent of
        // how confident the trained forest happens to be.
        c.threshold = 0.0;
        assert!(c.use_estimation(&f));
        c.threshold = 1.01;
        assert!(!c.use_estimation(&f));
    }

    #[test]
    fn wrong_width_is_rejected() {
        let x = Matrix::from_rows(&vec![vec![0.0; 5]; 10]).unwrap();
        let y = vec![0; 10];
        assert!(DependenceClassifier::fit(&x, &y, ClassifierBackend::Forest, &forest_cfg(), 1)
            .is_err());
    }
}
