//! The paper's training/evaluation protocol.
//!
//! "The estimation model is trained on 4000 edge pairs with sufficient
//! data. An instance of the classifier is initialized for each estimation
//! model. Following training, we test the model with a set of 1000 edge
//! pairs, measuring the KL-divergence between the output and ground truth
//! trajectories."
//!
//! Pairs are drawn from the trajectory observations ("with sufficient
//! data"); when the requested counts exceed the observed pairs, the pool
//! is topped up with additional consecutive pairs from the graph — the
//! Monte-Carlo oracle can label any pair, which the paper's real-data
//! setting could not.

use crate::error::CoreError;
use crate::model::classifier::{ClassifierBackend, DependenceClassifier};
use crate::model::estimator::DistributionEstimator;
use crate::model::features::pair_features;
use crate::model::hybrid::HybridModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use srt_dist::{convolve, convolve_bounded, kl_divergence, Histogram};
use srt_graph::EdgeId;
use srt_ml::dataset::Matrix;
use srt_ml::forest::ForestConfig;
use srt_ml::metrics::Confusion;
use srt_synth::SyntheticWorld;

/// Training-pipeline configuration (paper defaults).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct TrainingConfig {
    /// Edge pairs used for fitting (paper: 4000).
    pub train_pairs: usize,
    /// Held-out pairs for KL evaluation (paper: 1000).
    pub test_pairs: usize,
    /// Minimum trajectory observations for a pair to count as
    /// "with sufficient data".
    pub min_obs: usize,
    /// Histogram bucket budget.
    pub bins: usize,
    /// Forest configuration shared by estimator and gate.
    pub forest: ForestConfig,
    /// Gate backend.
    pub classifier_backend: ClassifierBackend,
    /// Seed for pair shuffling and model fitting.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            train_pairs: 4000,
            test_pairs: 1000,
            min_obs: 15,
            bins: 20,
            forest: ForestConfig::default(),
            classifier_backend: ClassifierBackend::Forest,
            seed: 0xC0DE,
        }
    }
}

/// Everything measured during training, mirroring the paper's
/// model-quality study plus the dependence statistic.
#[derive(Clone, PartialEq, Debug)]
pub struct TrainReport {
    /// Pairs actually used for fitting.
    pub n_train: usize,
    /// Pairs actually held out.
    pub n_test: usize,
    /// Fraction of pairs labelled dependent (paper: ~0.75).
    pub dependent_fraction: f64,
    /// Mean KL(truth ‖ hybrid output) on the test pairs.
    pub kl_hybrid_mean: f64,
    /// Median KL(truth ‖ hybrid output).
    pub kl_hybrid_median: f64,
    /// Mean KL(truth ‖ convolution) — the independence baseline.
    pub kl_convolution_mean: f64,
    /// Median KL(truth ‖ convolution).
    pub kl_convolution_median: f64,
    /// Mean KL(truth ‖ estimation-only).
    pub kl_estimation_mean: f64,
    /// Median KL(truth ‖ estimation-only).
    pub kl_estimation_median: f64,
    /// Gate accuracy on the test pairs.
    pub classifier_accuracy: f64,
    /// Gate F1 on the test pairs (positive class = dependent).
    pub classifier_f1: f64,
}

/// One prepared pair: features, estimator target, label, and the
/// distributions needed for evaluation.
struct PreparedPair {
    features: Vec<f64>,
    target: Vec<f64>,
    dependent: bool,
    truth: Histogram,
    marg1: Histogram,
    marg2: Histogram,
    support: (f64, f64),
}

fn median(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite KL values"));
    if sorted.is_empty() {
        return 0.0;
    }
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        0.5 * (sorted[mid - 1] + sorted[mid])
    } else {
        sorted[mid]
    }
}

/// Selects the training/evaluation pair pool.
fn select_pairs(world: &SyntheticWorld, cfg: &TrainingConfig) -> Result<Vec<(EdgeId, EdgeId)>, CoreError> {
    let wanted = cfg.train_pairs + cfg.test_pairs;
    let mut pairs = world.observations.pairs_with_at_least(cfg.min_obs);
    if pairs.len() < wanted {
        // Top up from the graph's consecutive pairs (deterministic order).
        let have: std::collections::HashSet<(EdgeId, EdgeId)> = pairs.iter().copied().collect();
        for p in world.graph.edge_pairs() {
            if pairs.len() >= wanted {
                break;
            }
            if !have.contains(&p) {
                pairs.push(p);
            }
        }
    }
    if pairs.len() < 40 {
        return Err(CoreError::InsufficientPairs {
            requested: wanted,
            available: pairs.len(),
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    pairs.shuffle(&mut rng);
    pairs.truncate(wanted.min(pairs.len()));
    Ok(pairs)
}

fn prepare_pair(world: &SyntheticWorld, cfg: &TrainingConfig, e1: EdgeId, e2: EdgeId) -> PreparedPair {
    let g = &world.graph;
    let gt = &world.ground_truth;
    let marg1 = gt.marginal(e1).clone();
    let marg2 = gt.marginal(e2).clone();
    let features = pair_features(g, &marg1, e1, e2, &marg2).to_vec();
    let truth = gt.pair_sum(g, &world.model, e1, e2);
    let conv = convolve(&marg1, &marg2);
    let kl = kl_divergence(&truth, &conv);
    let dependent = kl > gt.config().kl_threshold;

    let lo = marg1.start() + marg2.start();
    let hi = marg1.end() + marg2.end();
    let width = (hi - lo) / cfg.bins as f64;
    let target = truth
        .rebin_onto(lo, width, cfg.bins)
        .expect("valid target grid")
        .probs()
        .to_vec();

    PreparedPair {
        features,
        target,
        dependent,
        truth,
        marg1,
        marg2,
        support: (lo, hi),
    }
}

/// Runs the full paper protocol: select pairs, fit estimator + gate,
/// evaluate KL on held-out pairs.
pub fn train_hybrid(
    world: &SyntheticWorld,
    cfg: &TrainingConfig,
) -> Result<(HybridModel, TrainReport), CoreError> {
    let pairs = select_pairs(world, cfg)?;
    let prepared: Vec<PreparedPair> = pairs
        .iter()
        .map(|&(e1, e2)| prepare_pair(world, cfg, e1, e2))
        .collect();

    // Honour the requested test share even when fewer pairs are available.
    let n_total = prepared.len();
    let test_share = cfg.test_pairs as f64 / (cfg.train_pairs + cfg.test_pairs) as f64;
    let n_test = ((n_total as f64 * test_share).round() as usize).clamp(1, n_total - 1);
    let n_train = n_total - n_test;
    let (train, test) = prepared.split_at(n_train);

    let x_train = Matrix::from_rows(&train.iter().map(|p| p.features.clone()).collect::<Vec<_>>())?;
    let y_train = Matrix::from_rows(&train.iter().map(|p| p.target.clone()).collect::<Vec<_>>())?;
    let labels_train: Vec<usize> = train.iter().map(|p| usize::from(p.dependent)).collect();

    let estimator = DistributionEstimator::fit(&x_train, &y_train, cfg.bins, &cfg.forest, cfg.seed)?;
    let classifier = DependenceClassifier::fit(
        &x_train,
        &labels_train,
        cfg.classifier_backend,
        &cfg.forest,
        cfg.seed ^ 0x5A5A,
    )?;
    let mut model = HybridModel {
        estimator,
        classifier,
        bins: cfg.bins,
        calibration: None,
        envelope: None,
    };

    // Calibrate the dominance margin on held-out pairs: measure how far
    // the fitted combine operator can invert a dominance relation, so the
    // router's margin pruning knows its safety gap.
    let held_out = || {
        pairs[n_train..]
            .iter()
            .zip(&prepared[n_train..])
            .map(|(&(e1, e2), p)| (e1, e2, &p.marg1, &p.marg2))
    };
    let calibration = crate::model::calibration::calibrate(&model, &world.graph, held_out());
    model.calibration = Some(calibration);

    // Probe the estimator arm's support-mass envelope on the same
    // held-out pairs, so the router's certified-envelope bound knows how
    // much mass any estimator output can front-load.
    let envelope =
        crate::model::envelope::probe_support_envelope(&model, &world.graph, held_out());
    model.envelope = Some(envelope);

    // Held-out evaluation.
    let mut kl_h = Vec::with_capacity(test.len());
    let mut kl_c = Vec::with_capacity(test.len());
    let mut kl_e = Vec::with_capacity(test.len());
    let mut labels_true = Vec::with_capacity(test.len());
    let mut labels_pred = Vec::with_capacity(test.len());

    for p in test {
        let conv = convolve_bounded(&p.marg1, &p.marg2, cfg.bins)?;
        let est = model.estimator.predict(&p.features, p.support.0, p.support.1);
        let use_est = model.classifier.use_estimation(&p.features);
        let hybrid = if use_est { est.clone() } else { conv.clone() };

        kl_h.push(kl_divergence(&p.truth, &hybrid));
        kl_c.push(kl_divergence(&p.truth, &conv));
        kl_e.push(kl_divergence(&p.truth, &est));
        labels_true.push(usize::from(p.dependent));
        labels_pred.push(usize::from(use_est));
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let confusion = Confusion::from_labels(&labels_true, &labels_pred);
    let dependent_fraction =
        prepared.iter().filter(|p| p.dependent).count() as f64 / prepared.len() as f64;

    let report = TrainReport {
        n_train,
        n_test,
        dependent_fraction,
        kl_hybrid_mean: mean(&kl_h),
        kl_hybrid_median: median(&mut kl_h.clone()),
        kl_convolution_mean: mean(&kl_c),
        kl_convolution_median: median(&mut kl_c.clone()),
        kl_estimation_mean: mean(&kl_e),
        kl_estimation_median: median(&mut kl_e.clone()),
        classifier_accuracy: confusion.accuracy(),
        classifier_f1: confusion.f1(),
    };
    Ok((model, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use srt_synth::WorldConfig;

    fn small_training() -> TrainingConfig {
        TrainingConfig {
            train_pairs: 150,
            test_pairs: 50,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 8,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        }
    }

    #[test]
    fn pipeline_trains_and_reports() {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let (model, report) = train_hybrid(&world, &small_training()).unwrap();
        assert_eq!(model.bins, 10);
        assert!(report.n_train > 0 && report.n_test > 0);
        assert!(report.kl_hybrid_mean.is_finite());
        assert!(report.kl_convolution_mean > 0.0);
        assert!((0.0..=1.0).contains(&report.classifier_accuracy));
        assert!((0.0..=1.0).contains(&report.dependent_fraction));
    }

    #[test]
    fn hybrid_beats_or_matches_convolution_in_kl() {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let (_, report) = train_hybrid(&world, &small_training()).unwrap();
        // The paper's headline: hybrid <= convolution. Allow a small slack
        // band for the tiny test world.
        assert!(
            report.kl_hybrid_mean <= report.kl_convolution_mean * 1.1,
            "hybrid {} vs convolution {}",
            report.kl_hybrid_mean,
            report.kl_convolution_mean
        );
    }

    #[test]
    fn dependence_rate_is_in_band() {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let (_, report) = train_hybrid(&world, &small_training()).unwrap();
        assert!(
            (0.4..=0.95).contains(&report.dependent_fraction),
            "dependent fraction {}",
            report.dependent_fraction
        );
    }

    #[test]
    fn classifier_is_better_than_chance() {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let (_, report) = train_hybrid(&world, &small_training()).unwrap();
        assert!(
            report.classifier_accuracy > 0.55,
            "accuracy {}",
            report.classifier_accuracy
        );
    }

    #[test]
    fn training_is_deterministic() {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let (_, a) = train_hybrid(&world, &small_training()).unwrap();
        let (_, b) = train_hybrid(&world, &small_training()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn median_helper_works() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }
}
