//! The distribution estimation model.
//!
//! A multi-output random-forest regressor mapping the 24 pair features to
//! `B` bucket masses. The output *support* is not learned — it is known at
//! inference time as `[pre.start + next.start, pre.end + next.end]` (travel
//! times add), so the model only has to learn the *shape*, which is what
//! makes a model trained on two-edge pairs transfer to virtual edges.

use crate::error::CoreError;
use crate::model::features::FEATURE_COUNT;
use serde::{Deserialize, Serialize};
use srt_dist::Histogram;
use srt_ml::dataset::Matrix;
use srt_ml::forest::{ForestConfig, RandomForestRegressor};

/// A fitted distribution estimator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistributionEstimator {
    forest: RandomForestRegressor,
    bins: usize,
}

impl DistributionEstimator {
    /// Fits the estimator.
    ///
    /// `features` is `n x FEATURE_COUNT`; `targets` is `n x bins`, each row
    /// a ground-truth pair-sum histogram re-binned onto the pair's known
    /// support.
    pub fn fit(
        features: &Matrix,
        targets: &Matrix,
        bins: usize,
        cfg: &ForestConfig,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if features.cols() != FEATURE_COUNT {
            return Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch {
                expected: FEATURE_COUNT,
                found: features.cols(),
            }));
        }
        if targets.cols() != bins {
            return Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch {
                expected: bins,
                found: targets.cols(),
            }));
        }
        let forest = RandomForestRegressor::fit(features, targets, cfg, seed)?;
        Ok(DistributionEstimator { forest, bins })
    }

    /// Number of output buckets.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Predicts the bucket-mass vector (clipped to non-negative and
    /// renormalized to unit mass).
    pub fn predict_masses(&self, features: &[f64]) -> Vec<f64> {
        let mut masses = Vec::new();
        self.predict_masses_into(features, &mut masses);
        masses
    }

    /// [`DistributionEstimator::predict_masses`] writing into a
    /// caller-provided buffer — the allocation-free form the routing
    /// engine's estimator arm runs on. Bit-identical to the
    /// value-returning form, which delegates here.
    pub fn predict_masses_into(&self, features: &[f64], masses: &mut Vec<f64>) {
        self.forest.predict_row_into(features, masses);
        let mut total = 0.0;
        for m in masses.iter_mut() {
            if !m.is_finite() || *m < 0.0 {
                *m = 0.0;
            }
            total += *m;
        }
        if total <= 0.0 {
            // Degenerate prediction: fall back to uniform.
            let u = 1.0 / masses.len() as f64;
            masses.iter_mut().for_each(|m| *m = u);
        } else {
            masses.iter_mut().for_each(|m| *m /= total);
        }
    }

    /// Appends the binary snapshot of the estimator to `buf`.
    pub fn write_bytes(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.bins as u32);
        self.forest.write_bytes(buf);
    }

    /// Decodes an estimator written by
    /// [`DistributionEstimator::write_bytes`], advancing `data`.
    pub fn read_bytes(data: &mut &[u8]) -> Result<Self, CoreError> {
        use bytes::Buf;
        if data.remaining() < 4 {
            return Err(CoreError::Ml(srt_ml::MlError::Corrupt(
                "truncated estimator header".into(),
            )));
        }
        let bins = data.get_u32_le() as usize;
        let forest = RandomForestRegressor::read_bytes(data)?;
        if forest.n_outputs() != bins {
            return Err(CoreError::Ml(srt_ml::MlError::Corrupt(format!(
                "estimator bins {bins} disagree with forest outputs {}",
                forest.n_outputs()
            ))));
        }
        Ok(DistributionEstimator { forest, bins })
    }

    /// Split-count feature importances of the underlying forest
    /// (aligned with [`crate::model::features::FEATURE_NAMES`]).
    pub fn feature_importances(&self) -> Vec<f64> {
        self.forest.feature_importances()
    }

    /// Provable upper bounds on the prefix mass of **any** prediction:
    /// `caps[k]` bounds the total mass [`DistributionEstimator::predict`]
    /// can place in its first `k` buckets, over *all* feature inputs.
    ///
    /// Derived from the forest's global per-output leaf ranges
    /// ([`srt_ml::forest::RandomForestRegressor::output_ranges`]): with
    /// `P` the largest achievable (clipped) prefix sum and `S` the
    /// smallest achievable (clipped) suffix sum, the normalized prefix
    /// mass is at most `P / (P + S)` — the ratio is monotone in both
    /// arguments. When every leaf range allows an all-zero raw output,
    /// the uniform fallback of
    /// [`DistributionEstimator::predict_masses`] is reachable and the
    /// cap is widened to cover it.
    pub fn prefix_mass_caps(&self) -> Vec<f64> {
        let ranges = self.forest.output_ranges();
        let hi_pos: Vec<f64> = ranges.iter().map(|&(_, h)| h.max(0.0)).collect();
        let lo_pos: Vec<f64> = ranges.iter().map(|&(l, _)| l.max(0.0)).collect();
        let uniform_reachable = lo_pos.iter().sum::<f64>() <= 0.0;
        let mut caps = Vec::with_capacity(self.bins + 1);
        caps.push(0.0);
        for k in 1..=self.bins {
            let p_max: f64 = hi_pos[..k].iter().sum();
            let s_min: f64 = lo_pos[k..].iter().sum();
            let mut cap = if p_max <= 0.0 {
                0.0
            } else if s_min <= 0.0 {
                1.0
            } else {
                p_max / (p_max + s_min)
            };
            if uniform_reachable {
                cap = cap.max(k as f64 / self.bins as f64);
            }
            caps.push(cap.min(1.0));
        }
        caps[self.bins] = 1.0;
        caps
    }

    /// Predicts the joint distribution over the known support
    /// `[support_lo, support_hi)`.
    ///
    /// # Panics
    /// Panics if `support_hi <= support_lo` (caller passes histogram
    /// bounds, which are always ordered).
    pub fn predict(&self, features: &[f64], support_lo: f64, support_hi: f64) -> Histogram {
        let mut out = srt_dist::HistogramBuf::new();
        self.predict_into(features, support_lo, support_hi, &mut out);
        out.into_histogram()
            .expect("clipped, normalized masses form a valid histogram")
    }

    /// [`DistributionEstimator::predict`] writing into a caller-provided
    /// buffer. The masses written are raw in the [`srt_dist::HistogramBuf`]
    /// sense (one normalization pending — the one
    /// [`srt_dist::HistogramBuf::into_histogram`] applies), so promoting
    /// the buffer is bit-identical to the value-returning form.
    ///
    /// # Panics
    /// Panics if `support_hi <= support_lo` (caller passes histogram
    /// bounds, which are always ordered).
    pub fn predict_into(
        &self,
        features: &[f64],
        support_lo: f64,
        support_hi: f64,
        out: &mut srt_dist::HistogramBuf,
    ) {
        assert!(
            support_hi > support_lo,
            "estimator support must be non-degenerate"
        );
        self.predict_masses_into(features, out.reset_masses());
        let width = (support_hi - support_lo) / self.bins as f64;
        out.set_grid(support_lo, width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srt_ml::tree::TreeConfig;

    /// Synthetic task: features [m, s] -> triangular masses centred by m.
    fn toy_training(n: usize) -> (Matrix, Matrix) {
        let bins = 4;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let m = (i % 10) as f64 / 10.0;
            let mut f = vec![0.0; FEATURE_COUNT];
            f[0] = m; // pre_mean drives the shape
            f[1] = 0.1;
            xs.push(f);
            let mut t = vec![0.0; bins];
            let peak = ((m * bins as f64) as usize).min(bins - 1);
            t[peak] = 0.7;
            t[(peak + 1).min(bins - 1)] += 0.3;
            ys.push(t);
        }
        (Matrix::from_rows(&xs).unwrap(), Matrix::from_rows(&ys).unwrap())
    }

    fn cfg() -> ForestConfig {
        ForestConfig {
            n_trees: 10,
            tree: TreeConfig {
                max_depth: 6,
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        }
    }

    #[test]
    fn fit_and_predict_round_trip() {
        let (x, y) = toy_training(100);
        let est = DistributionEstimator::fit(&x, &y, 4, &cfg(), 1).unwrap();
        assert_eq!(est.bins(), 4);
        let mut f = vec![0.0; FEATURE_COUNT];
        f[0] = 0.05;
        f[1] = 0.1;
        let h = est.predict(&f, 100.0, 200.0);
        assert_eq!(h.num_bins(), 4);
        assert_eq!(h.start(), 100.0);
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Low pre_mean -> early peak.
        assert!(h.probs()[0] > 0.4, "probs {:?}", h.probs());
    }

    #[test]
    fn prediction_mass_is_always_normalized() {
        let (x, y) = toy_training(60);
        let est = DistributionEstimator::fit(&x, &y, 4, &cfg(), 2).unwrap();
        for i in 0..10 {
            let mut f = vec![0.0; FEATURE_COUNT];
            f[0] = i as f64 / 10.0;
            let masses = est.predict_masses(&f);
            assert!((masses.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(masses.iter().all(|&m| m >= 0.0));
        }
    }

    #[test]
    fn prefix_caps_bound_every_prediction() {
        let (x, y) = toy_training(80);
        let est = DistributionEstimator::fit(&x, &y, 4, &cfg(), 3).unwrap();
        let caps = est.prefix_mass_caps();
        assert_eq!(caps.len(), 5);
        assert_eq!(caps[0], 0.0);
        assert_eq!(caps[4], 1.0);
        // Monotone: prefix grows, suffix shrinks.
        for w in caps.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Every concrete prediction respects the caps.
        for i in 0..20 {
            let mut f = vec![0.0; FEATURE_COUNT];
            f[0] = (i % 10) as f64 / 10.0;
            f[1] = 0.1 + (i / 10) as f64;
            let m = est.predict_masses(&f);
            let mut acc = 0.0;
            for (k, &mass) in m.iter().enumerate() {
                acc += mass;
                assert!(acc <= caps[k + 1] + 1e-9, "prefix {k} of {m:?} vs {caps:?}");
            }
        }
        // The toy task concentrates late mass for late peaks, so the
        // first-bucket cap must be non-trivial only if the forest's
        // leaves allow it — either way it is a valid probability.
        assert!((0.0..=1.0).contains(&caps[1]));
    }

    #[test]
    fn wrong_feature_width_is_rejected() {
        let x = Matrix::from_rows(&vec![vec![0.0; 3]; 10]).unwrap();
        let y = Matrix::from_rows(&vec![vec![0.25; 4]; 10]).unwrap();
        assert!(matches!(
            DistributionEstimator::fit(&x, &y, 4, &cfg(), 1),
            Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch { .. }))
        ));
    }

    #[test]
    fn wrong_target_width_is_rejected() {
        let (x, y) = toy_training(10);
        assert!(matches!(
            DistributionEstimator::fit(&x, &y, 9, &cfg(), 1),
            Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch { .. }))
        ));
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_support_panics() {
        let (x, y) = toy_training(20);
        let est = DistributionEstimator::fit(&x, &y, 4, &cfg(), 1).unwrap();
        let f = vec![0.0; FEATURE_COUNT];
        let _ = est.predict(&f, 10.0, 10.0);
    }
}
