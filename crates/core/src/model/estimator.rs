//! The distribution estimation model.
//!
//! A multi-output random-forest regressor mapping the 24 pair features to
//! `B` bucket masses. The output *support* is not learned — it is known at
//! inference time as `[pre.start + next.start, pre.end + next.end]` (travel
//! times add), so the model only has to learn the *shape*, which is what
//! makes a model trained on two-edge pairs transfer to virtual edges.

use crate::error::CoreError;
use crate::model::features::FEATURE_COUNT;
use serde::{Deserialize, Serialize};
use srt_dist::Histogram;
use srt_ml::dataset::Matrix;
use srt_ml::forest::{ForestConfig, RandomForestRegressor};

/// A fitted distribution estimator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistributionEstimator {
    forest: RandomForestRegressor,
    bins: usize,
}

impl DistributionEstimator {
    /// Fits the estimator.
    ///
    /// `features` is `n x FEATURE_COUNT`; `targets` is `n x bins`, each row
    /// a ground-truth pair-sum histogram re-binned onto the pair's known
    /// support.
    pub fn fit(
        features: &Matrix,
        targets: &Matrix,
        bins: usize,
        cfg: &ForestConfig,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if features.cols() != FEATURE_COUNT {
            return Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch {
                expected: FEATURE_COUNT,
                found: features.cols(),
            }));
        }
        if targets.cols() != bins {
            return Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch {
                expected: bins,
                found: targets.cols(),
            }));
        }
        let forest = RandomForestRegressor::fit(features, targets, cfg, seed)?;
        Ok(DistributionEstimator { forest, bins })
    }

    /// Number of output buckets.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Predicts the bucket-mass vector (clipped to non-negative and
    /// renormalized to unit mass).
    pub fn predict_masses(&self, features: &[f64]) -> Vec<f64> {
        let mut masses = self.forest.predict_row(features);
        let mut total = 0.0;
        for m in &mut masses {
            if !m.is_finite() || *m < 0.0 {
                *m = 0.0;
            }
            total += *m;
        }
        if total <= 0.0 {
            // Degenerate prediction: fall back to uniform.
            let u = 1.0 / masses.len() as f64;
            masses.iter_mut().for_each(|m| *m = u);
        } else {
            masses.iter_mut().for_each(|m| *m /= total);
        }
        masses
    }

    /// Appends the binary snapshot of the estimator to `buf`.
    pub fn write_bytes(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.bins as u32);
        self.forest.write_bytes(buf);
    }

    /// Decodes an estimator written by
    /// [`DistributionEstimator::write_bytes`], advancing `data`.
    pub fn read_bytes(data: &mut &[u8]) -> Result<Self, CoreError> {
        use bytes::Buf;
        if data.remaining() < 4 {
            return Err(CoreError::Ml(srt_ml::MlError::Corrupt(
                "truncated estimator header".into(),
            )));
        }
        let bins = data.get_u32_le() as usize;
        let forest = RandomForestRegressor::read_bytes(data)?;
        if forest.n_outputs() != bins {
            return Err(CoreError::Ml(srt_ml::MlError::Corrupt(format!(
                "estimator bins {bins} disagree with forest outputs {}",
                forest.n_outputs()
            ))));
        }
        Ok(DistributionEstimator { forest, bins })
    }

    /// Split-count feature importances of the underlying forest
    /// (aligned with [`crate::model::features::FEATURE_NAMES`]).
    pub fn feature_importances(&self) -> Vec<f64> {
        self.forest.feature_importances()
    }

    /// Predicts the joint distribution over the known support
    /// `[support_lo, support_hi)`.
    ///
    /// # Panics
    /// Panics if `support_hi <= support_lo` (caller passes histogram
    /// bounds, which are always ordered).
    pub fn predict(&self, features: &[f64], support_lo: f64, support_hi: f64) -> Histogram {
        assert!(
            support_hi > support_lo,
            "estimator support must be non-degenerate"
        );
        let masses = self.predict_masses(features);
        let width = (support_hi - support_lo) / self.bins as f64;
        Histogram::new(support_lo, width, masses)
            .expect("clipped, normalized masses form a valid histogram")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srt_ml::tree::TreeConfig;

    /// Synthetic task: features [m, s] -> triangular masses centred by m.
    fn toy_training(n: usize) -> (Matrix, Matrix) {
        let bins = 4;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let m = (i % 10) as f64 / 10.0;
            let mut f = vec![0.0; FEATURE_COUNT];
            f[0] = m; // pre_mean drives the shape
            f[1] = 0.1;
            xs.push(f);
            let mut t = vec![0.0; bins];
            let peak = ((m * bins as f64) as usize).min(bins - 1);
            t[peak] = 0.7;
            t[(peak + 1).min(bins - 1)] += 0.3;
            ys.push(t);
        }
        (Matrix::from_rows(&xs).unwrap(), Matrix::from_rows(&ys).unwrap())
    }

    fn cfg() -> ForestConfig {
        ForestConfig {
            n_trees: 10,
            tree: TreeConfig {
                max_depth: 6,
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        }
    }

    #[test]
    fn fit_and_predict_round_trip() {
        let (x, y) = toy_training(100);
        let est = DistributionEstimator::fit(&x, &y, 4, &cfg(), 1).unwrap();
        assert_eq!(est.bins(), 4);
        let mut f = vec![0.0; FEATURE_COUNT];
        f[0] = 0.05;
        f[1] = 0.1;
        let h = est.predict(&f, 100.0, 200.0);
        assert_eq!(h.num_bins(), 4);
        assert_eq!(h.start(), 100.0);
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Low pre_mean -> early peak.
        assert!(h.probs()[0] > 0.4, "probs {:?}", h.probs());
    }

    #[test]
    fn prediction_mass_is_always_normalized() {
        let (x, y) = toy_training(60);
        let est = DistributionEstimator::fit(&x, &y, 4, &cfg(), 2).unwrap();
        for i in 0..10 {
            let mut f = vec![0.0; FEATURE_COUNT];
            f[0] = i as f64 / 10.0;
            let masses = est.predict_masses(&f);
            assert!((masses.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(masses.iter().all(|&m| m >= 0.0));
        }
    }

    #[test]
    fn wrong_feature_width_is_rejected() {
        let x = Matrix::from_rows(&vec![vec![0.0; 3]; 10]).unwrap();
        let y = Matrix::from_rows(&vec![vec![0.25; 4]; 10]).unwrap();
        assert!(matches!(
            DistributionEstimator::fit(&x, &y, 4, &cfg(), 1),
            Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch { .. }))
        ));
    }

    #[test]
    fn wrong_target_width_is_rejected() {
        let (x, y) = toy_training(10);
        assert!(matches!(
            DistributionEstimator::fit(&x, &y, 9, &cfg(), 1),
            Err(CoreError::Ml(srt_ml::MlError::FeatureMismatch { .. }))
        ));
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_support_panics() {
        let (x, y) = toy_training(20);
        let est = DistributionEstimator::fit(&x, &y, 4, &cfg(), 1).unwrap();
        let f = vec![0.0; FEATURE_COUNT];
        let _ = est.predict(&f, 10.0, 10.0);
    }
}
