//! Feature extraction for (virtual-edge, next-edge) pairs.
//!
//! The same 24-dimensional vector serves training (where the "virtual
//! edge" is a real edge's marginal) and inference (where it is the
//! distribution of the path so far). Everything is derivable from the
//! pre-distribution, the next edge's marginal and static road/junction
//! attributes — no quantity that only exists at training time leaks in.

use srt_dist::{Histogram, HistogramView};
use srt_graph::{EdgeId, RoadGraph};

/// Dimension of the pair feature vector.
pub const FEATURE_COUNT: usize = 24;

/// Human-readable feature names (aligned with [`pair_features`] output).
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "pre_mean",
    "pre_std",
    "pre_min",
    "pre_max",
    "pre_span",
    "pre_entropy",
    "pre_mode_mass",
    "pre_q25",
    "pre_q50",
    "pre_q75",
    "next_mean",
    "next_std",
    "next_min",
    "next_max",
    "next_span",
    "next_length_m",
    "next_speed_kmh",
    "next_freeflow_s",
    "next_category",
    "turn_angle_deg",
    "junction_out_degree",
    "junction_in_degree",
    "mean_ratio",
    "span_ratio",
];

/// Extracts the feature vector for combining `pre` (the distribution of
/// the path so far, whose last edge is `prev_edge`) with `next_edge`.
///
/// `next_marginal` is the travel-time marginal of `next_edge`.
pub fn pair_features(
    g: &RoadGraph,
    pre: &Histogram,
    prev_edge: EdgeId,
    next_edge: EdgeId,
    next_marginal: &Histogram,
) -> [f64; FEATURE_COUNT] {
    pair_features_view(g, &pre.view(), prev_edge, next_edge, next_marginal)
}

/// [`pair_features`] over a borrowed pre-distribution — the form the
/// routing engine's expansion loop uses, so a label's offset-translated
/// histogram feeds the model without being materialized. Bit-identical
/// to the `Histogram` form (which delegates here).
pub fn pair_features_view(
    g: &RoadGraph,
    pre: &HistogramView<'_>,
    prev_edge: EdgeId,
    next_edge: EdgeId,
    next_marginal: &Histogram,
) -> [f64; FEATURE_COUNT] {
    let attrs = g.attrs(next_edge);
    let junction = g.edge_source(next_edge);
    let turn = g.turn_angle(prev_edge, next_edge).unwrap_or(0.0);

    let pre_span = pre.end() - pre.start();
    let next_span = next_marginal.end() - next_marginal.start();

    [
        pre.mean(),
        pre.std_dev(),
        pre.start(),
        pre.end(),
        pre_span,
        pre.entropy(),
        pre.max_prob(),
        pre.quantile(0.25),
        pre.quantile(0.50),
        pre.quantile(0.75),
        next_marginal.mean(),
        next_marginal.std_dev(),
        next_marginal.start(),
        next_marginal.end(),
        next_span,
        attrs.length_m,
        attrs.speed_limit_kmh,
        attrs.freeflow_time_s(),
        attrs.category.as_index() as f64,
        turn,
        g.out_degree(junction) as f64,
        g.in_degree(junction) as f64,
        if next_marginal.mean() > 0.0 {
            pre.mean() / next_marginal.mean()
        } else {
            0.0
        },
        if next_span > 0.0 { pre_span / next_span } else { 0.0 },
    ]
}

/// Feature indices that depend on the pre-distribution (and therefore on
/// the particular path prefix a router label carries): the ten `pre_*`
/// statistics plus the two ratios against it.
pub const PRE_DEPENDENT_FEATURES: [usize; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 22, 23];

/// The pair feature vector with the pre-distribution treated as unknown:
/// static road/junction/next-edge features are concrete, every
/// pre-dependent entry is `None`. This is the input to the classifier's
/// interval bounds ([`crate::model::DependenceClassifier::prob_dependent_bounds`]),
/// which quantify the gate decision over *all* possible path prefixes
/// ending in `prev_edge`.
pub fn pair_features_partial(
    g: &RoadGraph,
    prev_edge: EdgeId,
    next_edge: EdgeId,
    next_marginal: &Histogram,
) -> [Option<f64>; FEATURE_COUNT] {
    // Any valid placeholder works for the pre slot: its contributions are
    // erased below.
    let probe = pair_features(g, next_marginal, prev_edge, next_edge, next_marginal);
    let mut out = probe.map(Some);
    for i in PRE_DEPENDENT_FEATURES {
        out[i] = None;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srt_graph::{EdgeAttrs, GraphBuilder, Point, RoadCategory};

    fn tiny() -> (RoadGraph, EdgeId, EdgeId) {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(10.0, 56.0));
        let c = b.add_node(Point::new(10.01, 56.0));
        let d = b.add_node(Point::new(10.01, 56.01));
        let e1 = b.add_edge(a, c, EdgeAttrs::new(700.0, RoadCategory::Primary, 80.0));
        let e2 = b.add_edge(c, d, EdgeAttrs::new(400.0, RoadCategory::Residential, 50.0));
        (b.build(), e1, e2)
    }

    #[test]
    fn feature_vector_has_documented_shape() {
        let (g, e1, e2) = tiny();
        let pre = Histogram::new(30.0, 5.0, vec![0.25; 4]).unwrap();
        let nm = Histogram::new(25.0, 5.0, vec![0.5, 0.5]).unwrap();
        let f = pair_features(&g, &pre, e1, e2, &nm);
        assert_eq!(f.len(), FEATURE_COUNT);
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn features_reflect_their_sources() {
        let (g, e1, e2) = tiny();
        let pre = Histogram::new(30.0, 5.0, vec![0.25; 4]).unwrap();
        let nm = Histogram::new(25.0, 5.0, vec![0.5, 0.5]).unwrap();
        let f = pair_features(&g, &pre, e1, e2, &nm);
        assert!((f[0] - pre.mean()).abs() < 1e-12);
        assert!((f[2] - 30.0).abs() < 1e-12);
        assert!((f[10] - nm.mean()).abs() < 1e-12);
        assert!((f[15] - 400.0).abs() < 1e-12);
        assert!((f[18] - RoadCategory::Residential.as_index() as f64).abs() < 1e-12);
        // Right-angle turn at the junction.
        assert!(f[19] > 45.0 && f[19] <= 180.0);
    }

    #[test]
    fn virtual_edge_changes_only_pre_features() {
        let (g, e1, e2) = tiny();
        let nm = Histogram::new(25.0, 5.0, vec![0.5, 0.5]).unwrap();
        let pre_a = Histogram::new(30.0, 5.0, vec![0.25; 4]).unwrap();
        let pre_b = Histogram::new(300.0, 10.0, vec![0.5, 0.5]).unwrap();
        let fa = pair_features(&g, &pre_a, e1, e2, &nm);
        let fb = pair_features(&g, &pre_b, e1, e2, &nm);
        // Next-edge/static features (10..22) identical.
        for i in 10..22 {
            assert!((fa[i] - fb[i]).abs() < 1e-12, "feature {i} changed");
        }
        // Pre features differ.
        assert!((fa[0] - fb[0]).abs() > 1.0);
    }

    #[test]
    fn partial_features_mask_exactly_the_pre_entries() {
        let (g, e1, e2) = tiny();
        let nm = Histogram::new(25.0, 5.0, vec![0.5, 0.5]).unwrap();
        let partial = pair_features_partial(&g, e1, e2, &nm);
        let concrete = pair_features(&g, &nm, e1, e2, &nm);
        for (i, slot) in partial.iter().enumerate() {
            if PRE_DEPENDENT_FEATURES.contains(&i) {
                assert!(slot.is_none(), "feature {i} should be masked");
            } else {
                assert_eq!(*slot, Some(concrete[i]), "feature {i} should be static");
            }
        }
        // Whatever the pre-distribution, the concrete vector agrees with
        // the partial one on every known entry.
        let other_pre = Histogram::new(300.0, 10.0, vec![0.5, 0.5]).unwrap();
        let f = pair_features(&g, &other_pre, e1, e2, &nm);
        for (i, slot) in partial.iter().enumerate() {
            if let Some(v) = slot {
                assert!((f[i] - v).abs() < 1e-12, "feature {i} drifted");
            }
        }
    }

    #[test]
    fn degenerate_distributions_do_not_produce_nan() {
        let (g, e1, e2) = tiny();
        let pre = Histogram::point_mass(10.0, 1e-6).unwrap();
        let nm = Histogram::point_mass(5.0, 1e-6).unwrap();
        let f = pair_features(&g, &pre, e1, e2, &nm);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
