//! Support-mass envelopes for the learned estimator arm.
//!
//! The paper's optimistic pruning bound evaluates a label's CDF at the
//! budget minus the optimistic remaining time. Under pure convolution
//! that is exact: a future edge can only *shift* mass later. The
//! estimator arm breaks it — the forest predicts a fresh *shape* over
//! the (known, additive) output support, and that shape may front-load
//! mass relative to what convolution would produce, so a pruned label's
//! completion can overtake the incumbent (the oracle suite measured
//! ~3.5e-3 of drift under `BoundMode::Optimistic`).
//!
//! What the estimator cannot do is place *arbitrary* mass early: its
//! outputs are normalized forest predictions, and both the fitted leaves
//! and the training distribution constrain how much probability any
//! prediction can put in the first `k` of its `bins` output buckets.
//! This module measures that constraint at training time and persists it
//! as a [`SupportEnvelope`] — a monotone, fraction-space CDF upper bound
//! `bounds[k] >= sup_features prefix_mass_k(predict(features))` — in the
//! model snapshot (io format v3).
//!
//! The envelope is built from two ingredients:
//!
//! 1. a **provable cap** from the forest's global leaf ranges
//!    ([`crate::model::DistributionEstimator::prefix_mass_caps`]) —
//!    sound for every
//!    input by construction, but loose when early-bucket leaves vary;
//! 2. an **empirical maximum** from probing the fitted estimator on
//!    held-out edge pairs (raw marginals, accumulated two-edge prefixes
//!    and shifted variants — the label shapes the router actually
//!    carries), inflated by a safety factor.
//!
//! Each knot takes the smaller of the two, the curve is made monotone
//! and then *concave-majorized* (see
//! [`srt_dist::MassEnvelope::concave_majorant`]) so it also dominates
//! the lattice chords introduced by downstream bucket-capped
//! convolutions. Like the dominance-margin calibration, the empirical
//! component is a probe-set statement, not a proof over all feature
//! vectors — the scenario-matrix oracle suite is what certifies the
//! resulting bound end to end (zero drift on every topology), and a
//! failure there means the safety factor or probe set must widen.

use crate::model::features::pair_features;
use crate::model::hybrid::HybridModel;
use serde::{Deserialize, Serialize};
use srt_dist::{Histogram, MassEnvelope};
use srt_graph::{EdgeId, RoadGraph};

/// Multiplicative safety factor on the observed prefix maxima, absorbing
/// probe-set sampling error (the probes cannot cover every feature
/// vector the search will synthesize).
const SAFETY_FACTOR: f64 = 1.25;

/// Additive headroom on the observed prefix maxima, absorbing the
/// lattice-chord slop of downstream bucket-capped convolutions.
const HEADROOM: f64 = 0.01;

/// Shift fractions (of the prefix bucket width) applied to each probe
/// prefix, mirroring the dominance calibration's probe recipe.
const SHIFT_FRACTIONS: [f64; 2] = [0.25, 1.0];

/// Maximum number of probe pairs consumed.
pub const DEFAULT_PROBE_PAIRS: usize = 64;

/// The persisted support-mass envelope of one fitted estimator arm:
/// `bounds[k]` bounds the CDF mass any estimator output can place in the
/// first `k` buckets of its (known) support, `k = 0..=bins`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SupportEnvelope {
    /// Monotone knot values in `[0, 1]`; `bounds[0] = 0`,
    /// `bounds[bins] = 1`.
    bounds: Vec<f64>,
    /// Number of estimator probes measured.
    pub n_probes: usize,
}

impl SupportEnvelope {
    /// Builds an envelope from raw knot values, normalizing them into a
    /// valid envelope: clamped to `[0, 1]`, forced monotone (running
    /// max), pinned to `0` at the first knot and `1` at the last.
    ///
    /// # Panics
    /// Panics if fewer than two knots are supplied or any is non-finite.
    pub fn from_bounds(mut bounds: Vec<f64>, n_probes: usize) -> Self {
        assert!(bounds.len() >= 2, "an envelope needs at least one bucket");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "envelope knots must be finite"
        );
        bounds[0] = 0.0;
        let mut run = 0.0f64;
        for b in &mut bounds {
            run = run.max(b.clamp(0.0, 1.0));
            *b = run;
        }
        let last = bounds.len() - 1;
        bounds[last] = 1.0;
        SupportEnvelope { bounds, n_probes }
    }

    /// Number of support buckets the envelope is resolved to (the
    /// estimator's output bins).
    pub fn bins(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The knot values.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Upper bound on the mass any covered output places below support
    /// fraction `q` (linear interpolation; `q <= 0` gives `0`, `q >= 1`
    /// gives `1`).
    pub fn bound_at_fraction(&self, q: f64) -> f64 {
        if q.is_nan() || q <= 0.0 {
            return 0.0;
        }
        let n = self.bins() as f64;
        let t = q * n;
        if t >= n {
            return 1.0;
        }
        let k = t.floor() as usize;
        let frac = t - k as f64;
        (1.0 - frac) * self.bounds[k] + frac * self.bounds[k + 1]
    }

    /// Instantiates the envelope on a concrete support `[lo, hi)` as a
    /// [`srt_dist::MassEnvelope`]: the envelope every estimator output
    /// over that support lives within.
    ///
    /// # Panics
    /// Panics if `hi <= lo` (estimator supports are non-degenerate).
    pub fn instantiate(&self, lo: f64, hi: f64) -> MassEnvelope {
        assert!(hi > lo, "envelope support must be non-degenerate");
        let width = (hi - lo) / self.bins() as f64;
        MassEnvelope::new(lo, width, self.bounds.clone())
            .expect("validated knots form a valid envelope")
    }

    /// Checks the envelope's CDF contract: at least two knots, each
    /// finite, within `[0, 1]` and monotone, anchored at `0` and `1`.
    ///
    /// [`SupportEnvelope::from_bounds`] establishes this by
    /// construction and [`SupportEnvelope::read_bytes`] enforces it on
    /// decode; this standalone form exists for admission checks on
    /// models built in memory (a hot-swap candidate bypasses the
    /// snapshot decoder entirely).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.bounds.len();
        if !(2..=1 << 16).contains(&n) {
            return Err(format!("implausible envelope knot count {n}"));
        }
        let mut prev = 0.0f64;
        for (i, &b) in self.bounds.iter().enumerate() {
            if !b.is_finite() || !(0.0..=1.0).contains(&b) || b < prev {
                return Err(format!("envelope knot {i} = {b} is invalid"));
            }
            prev = b;
        }
        if self.bounds[0] != 0.0 || *self.bounds.last().expect("non-empty") != 1.0 {
            return Err("envelope must span [0, 1]".into());
        }
        Ok(())
    }

    /// Appends the binary snapshot of the envelope to `buf`.
    pub fn write_bytes(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.bounds.len() as u32);
        for &b in &self.bounds {
            buf.put_f64_le(b);
        }
        buf.put_u32_le(self.n_probes as u32);
    }

    /// Decodes an envelope written by [`SupportEnvelope::write_bytes`],
    /// advancing `data`. The decoded knots must pass
    /// [`SupportEnvelope::validate`] — corrupt bytes never become a
    /// served envelope.
    pub fn read_bytes(data: &mut &[u8]) -> Result<Self, crate::error::CoreError> {
        use bytes::Buf;
        let corrupt =
            |msg: String| crate::error::CoreError::Ml(srt_ml::MlError::Corrupt(msg));
        if data.remaining() < 4 {
            return Err(corrupt("truncated envelope header".into()));
        }
        let n = data.get_u32_le() as usize;
        if !(2..=1 << 16).contains(&n) {
            return Err(corrupt(format!("implausible envelope knot count {n}")));
        }
        if data.remaining() < n * 8 + 4 {
            return Err(corrupt("truncated envelope payload".into()));
        }
        let mut bounds = Vec::with_capacity(n);
        for _ in 0..n {
            bounds.push(data.get_f64_le());
        }
        let n_probes = data.get_u32_le() as usize;
        let env = SupportEnvelope { bounds, n_probes };
        env.validate().map_err(corrupt)?;
        Ok(env)
    }
}

/// Probes the fitted estimator arm of `model` on held-out pairs and
/// builds its support-mass envelope.
///
/// For each pair the estimator is queried with the same prefix shapes
/// the dominance calibration uses — the raw first marginal, the
/// accumulated two-edge combine (the wider support mid-search labels
/// carry) and shifted variants of both — and the per-knot maximum of the
/// observed prefix masses is recorded. The persisted knot is
/// `min(provable cap, observed max × safety + headroom)`, monotone and
/// concave-majorized (see the module docs for why).
pub fn probe_support_envelope<'a>(
    model: &HybridModel,
    g: &RoadGraph,
    pairs: impl IntoIterator<Item = (EdgeId, EdgeId, &'a Histogram, &'a Histogram)>,
) -> SupportEnvelope {
    let bins = model.bins;
    let mut max_observed = vec![0.0f64; bins + 1];
    let mut n_probes = 0usize;

    let mut record = |masses: &[f64]| {
        let mut acc = 0.0;
        for (k, &m) in masses.iter().enumerate() {
            acc += m;
            max_observed[k + 1] = max_observed[k + 1].max(acc);
        }
        n_probes += 1;
    };

    for (e1, e2, marg1, marg2) in pairs.into_iter().take(DEFAULT_PROBE_PAIRS) {
        let accumulated = model.combine(g, marg1, e1, e2, marg2).0;
        let prefixes = [marg1, &accumulated];
        for pre in prefixes {
            let f = pair_features(g, pre, e1, e2, marg2);
            record(&model.estimator.predict_masses(&f));
            for frac in SHIFT_FRACTIONS {
                let shifted = pre.shift(pre.width() * frac);
                let f = pair_features(g, &shifted, e1, e2, marg2);
                record(&model.estimator.predict_masses(&f));
            }
        }
    }

    let caps = model.estimator.prefix_mass_caps();
    let raw: Vec<f64> = max_observed
        .iter()
        .zip(&caps)
        .map(|(&obs, &cap)| (obs * SAFETY_FACTOR + HEADROOM).min(cap).min(1.0))
        .collect();
    let normalized = SupportEnvelope::from_bounds(raw, n_probes);

    // Concave-majorize on the unit lattice so the persisted knots also
    // dominate the lattice chords of downstream capped convolutions.
    let unit = normalized.instantiate(0.0, 1.0).concave_majorant();
    SupportEnvelope::from_bounds(unit.bounds().to_vec(), n_probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::training::{train_hybrid, TrainingConfig};
    use srt_ml::forest::ForestConfig;
    use srt_synth::{SyntheticWorld, WorldConfig};
    use std::sync::OnceLock;

    fn fixture() -> &'static (SyntheticWorld, HybridModel) {
        static FIX: OnceLock<(SyntheticWorld, HybridModel)> = OnceLock::new();
        FIX.get_or_init(|| {
            let world = SyntheticWorld::build(WorldConfig::tiny());
            let cfg = TrainingConfig {
                train_pairs: 120,
                test_pairs: 40,
                min_obs: 5,
                bins: 10,
                forest: ForestConfig {
                    n_trees: 6,
                    ..ForestConfig::default()
                },
                ..TrainingConfig::default()
            };
            let (model, _) = train_hybrid(&world, &cfg).expect("fixture trains");
            (world, model)
        })
    }

    #[test]
    fn training_attaches_an_envelope() {
        let (_, model) = fixture();
        let env = model.envelope.as_ref().expect("training probes an envelope");
        assert_eq!(env.bins(), model.bins);
        assert!(env.n_probes > 0);
        assert_eq!(env.bounds()[0], 0.0);
        assert_eq!(*env.bounds().last().unwrap(), 1.0);
        for w in env.bounds().windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "knots must be monotone");
        }
        // Concave: increments never grow.
        let b = env.bounds();
        for k in 2..b.len() {
            assert!(b[k] - b[k - 1] <= b[k - 1] - b[k - 2] + 1e-9);
        }
    }

    #[test]
    fn envelope_covers_estimator_outputs_on_fresh_pairs() {
        // The envelope was probed on held-out pairs; it must cover
        // estimator outputs on *training-region* pairs too (same world,
        // different draw) — the empirical generalization the oracle
        // suite later certifies end to end.
        let (world, model) = fixture();
        let env = model.envelope.as_ref().unwrap();
        let g = &world.graph;
        let mut checked = 0;
        for (e1, e2) in g.edge_pairs().take(40) {
            let m1 = world.ground_truth.marginal(e1);
            let m2 = world.ground_truth.marginal(e2);
            let f = pair_features(g, m1, e1, e2, m2);
            let out = model.estimator.predict(&f, m1.start() + m2.start(), m1.end() + m2.end());
            let inst = env.instantiate(out.start(), out.end());
            assert!(inst.contains(&out), "pair {e1:?}->{e2:?}");
            checked += 1;
        }
        assert!(checked >= 20);
    }

    #[test]
    fn fraction_bound_interpolates() {
        let env = SupportEnvelope::from_bounds(vec![0.0, 0.4, 0.8, 1.0], 5);
        assert_eq!(env.bound_at_fraction(-1.0), 0.0);
        assert_eq!(env.bound_at_fraction(0.0), 0.0);
        assert_eq!(env.bound_at_fraction(f64::NAN), 0.0);
        assert!((env.bound_at_fraction(1.0 / 3.0) - 0.4).abs() < 1e-12);
        assert!((env.bound_at_fraction(0.5) - 0.6).abs() < 1e-12);
        assert_eq!(env.bound_at_fraction(1.0), 1.0);
        assert_eq!(env.bound_at_fraction(2.0), 1.0);
    }

    #[test]
    fn from_bounds_normalizes() {
        let env = SupportEnvelope::from_bounds(vec![0.3, 0.2, 1.4, 0.9], 1);
        assert_eq!(env.bounds(), &[0.0, 0.2, 1.0, 1.0]);
        assert_eq!(env.bins(), 3);
    }

    #[test]
    fn envelope_round_trips_through_bytes() {
        let env = SupportEnvelope::from_bounds(vec![0.0, 0.25, 0.5, 0.75, 1.0], 42);
        let mut buf = bytes::BytesMut::new();
        env.write_bytes(&mut buf);
        let mut slice = &buf[..];
        let back = SupportEnvelope::read_bytes(&mut slice).unwrap();
        assert_eq!(back, env);
        assert!(slice.is_empty());

        // Truncations and invalid knots are rejected.
        assert!(SupportEnvelope::read_bytes(&mut &buf[..6]).is_err());
        let mut bad = buf.to_vec();
        bad[4..12].copy_from_slice(&0.5f64.to_le_bytes()); // first knot != 0
        assert!(SupportEnvelope::read_bytes(&mut &bad[..]).is_err());
        let mut bad = buf.to_vec();
        bad[12..20].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(SupportEnvelope::read_bytes(&mut &bad[..]).is_err());
    }

    #[test]
    fn instantiation_matches_fraction_bound() {
        let env = SupportEnvelope::from_bounds(vec![0.0, 0.1, 0.6, 1.0], 3);
        let inst = env.instantiate(30.0, 60.0);
        for q in [0.0, 0.2, 0.5, 0.9, 1.0] {
            let x = 30.0 + q * 30.0;
            assert!(
                (inst.bound_at(x) - env.bound_at_fraction(q)).abs() < 1e-12,
                "q = {q}"
            );
        }
    }
}
