//! # srt-core — hybrid learning + convolution stochastic routing
//!
//! The paper's contribution, end to end:
//!
//! * [`model`] — the **Hybrid Model**: a multi-output forest
//!   *distribution estimator* that predicts the dependent joint cost of
//!   traversing two consecutive edges, and a binary *dependence
//!   classifier* that decides per intersection whether plain convolution
//!   suffices; plus the training pipeline (4,000 train / 1,000 test edge
//!   pairs, KL-divergence evaluation) mirroring the paper's protocol,
//! * [`cost`] — iterative path-cost computation that treats the
//!   path-so-far as a *virtual edge*, so the two-edge estimator scales to
//!   arbitrary path lengths,
//! * [`routing`] — **Probabilistic Budget Routing**: given `(source,
//!   destination, budget)`, find the path maximizing on-time arrival
//!   probability, with the paper's four prunings — (a) optimistic
//!   remaining cost, (b) pivot path, (c) distribution cost shifting,
//!   (d) stochastic-dominance label pruning — and the **anytime**
//!   extension that returns the pivot when a wall-clock limit expires.
//!   Prunings are composable [`routing::policy::PrunePolicy`] values
//!   with provably sound modes (convolution-gated and margin-calibrated
//!   dominance, the certified bound), certified differentially against
//!   the exhaustive [`routing::OracleRouter`]. Queries are served by the
//!   owning, `Send + Sync` [`routing::RoutingEngine`] — policies and
//!   certificates resolved once, per-target bounds cached, batches
//!   dispatched to a worker pool from reusable
//!   [`routing::SearchContext`] scratch,
//! * [`sync`] — the engine's concurrency-protocol cores ([`sync::SeqLock`],
//!   [`sync::BoundedLru`], [`sync::EpochCell`]), written against
//!   `srt-check`'s primitive switch so the model checker can prove them
//!   under exhaustive interleaving (`RUSTFLAGS="--cfg srt_check" cargo
//!   test -p srt-check`); plain `std::sync` in normal builds.
//!
//! # Unsafe policy
//!
//! This crate (like every first-party crate in the workspace) is
//! `#![forbid(unsafe_code)]`: the system is pure safe Rust, enforced at
//! the crate root and by the `srt-check lint` / clippy CI gates.
//!
//! # Quickstart
//!
//! ```no_run
//! use srt_synth::{SyntheticWorld, WorldConfig, DistanceCategory, QueryGenerator};
//! use srt_core::model::training::{train_hybrid, TrainingConfig};
//! use srt_core::cost::{CombinePolicy, HybridCost};
//! use srt_core::routing::{EngineBuilder, Query, RouterConfig};
//!
//! let world = SyntheticWorld::build(WorldConfig::small());
//! let (model, report) = train_hybrid(&world, &TrainingConfig::default()).unwrap();
//! println!("hybrid KL = {:.4}", report.kl_hybrid_mean);
//!
//! let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
//! let engine = EngineBuilder::new(cost).config(RouterConfig::default()).build();
//! let mut qg = QueryGenerator::new(1);
//! let q = qg.generate(&world.graph, &world.model, DistanceCategory::OneToFive, 1)[0];
//! let result = engine.route(&Query::from(&q)).unwrap();
//! println!("P(on time) = {:.3}", result.probability);
//! println!("bounds cache: {:?}", engine.stats());
//! ```

#![forbid(unsafe_code)]

pub mod cost;
pub mod error;
pub mod model;
pub mod routing;
pub mod sync;

pub use cost::{CombinePolicy, HybridCost};
pub use error::CoreError;
pub use model::hybrid::HybridModel;
pub use model::training::{train_hybrid, TrainReport, TrainingConfig};
pub use routing::{
    BatchExecutor, BoundMode, BudgetRouter, DominanceMode, EngineBuilder, EngineError, EngineStats,
    ExecutorStats, ModelEpoch, OracleRouter, Query, RouteResult, RouterConfig, RoutingEngine,
    SearchContext, SearchStats, StatsSnapshot, SwapError,
};
