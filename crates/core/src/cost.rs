//! Iterative path-cost computation with virtual edges.
//!
//! "Path cost computation is an iterative process, as the cost of a path
//! is computed by repeatedly combining the cost of the path so far with
//! the cost of the next edge until the last edge is reached. We can use
//! the distribution estimation model built for short paths to estimate the
//! costs of longer paths by treating the path so far (pre-path) as a
//! 'virtual' edge."

use crate::model::features::pair_features_view;
use crate::model::hybrid::{CombineOutcome, HybridModel};
use srt_dist::{with_local_pool, Histogram, HistogramBuf, HistogramPool, HistogramView};
use srt_graph::{EdgeId, RoadGraph};
use srt_synth::SyntheticWorld;
use std::sync::Arc;

/// How the path-so-far is combined with the next edge.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CombinePolicy {
    /// The paper's hybrid: classifier-gated convolution/estimation.
    Hybrid,
    /// Independence baseline: always convolve.
    AlwaysConvolve,
    /// Ablation: always use the learned estimator.
    AlwaysEstimate,
}

/// Path-cost oracle: per-edge marginals + the hybrid model + a policy.
///
/// The oracle *owns* its data behind [`Arc`]s, so it is `Send + Sync`,
/// cheap to clone, and shareable across query-serving threads — the
/// storage shape [`crate::routing::RoutingEngine`] is built on. The
/// borrowing constructors ([`HybridCost::new`],
/// [`HybridCost::from_ground_truth`]) clone the graph and model once;
/// callers that already hold shared handles use
/// [`HybridCost::from_parts`] for zero-copy construction.
#[derive(Clone, Debug)]
pub struct HybridCost {
    graph: Arc<RoadGraph>,
    model: Arc<HybridModel>,
    marginals: Arc<[Histogram]>,
    /// Combination policy (swappable for baselines/ablations).
    pub policy: CombinePolicy,
}

impl HybridCost {
    /// Builds a cost oracle from explicit per-edge marginals, cloning
    /// `graph` and `model` into shared ownership.
    ///
    /// # Panics
    /// Panics if `marginals.len() != graph.num_edges()`.
    pub fn new(
        graph: &RoadGraph,
        model: &HybridModel,
        marginals: Vec<Histogram>,
        policy: CombinePolicy,
    ) -> Self {
        Self::from_parts(
            Arc::new(graph.clone()),
            Arc::new(model.clone()),
            marginals.into(),
            policy,
        )
    }

    /// Builds a cost oracle from shared handles without copying any of
    /// the underlying data.
    ///
    /// # Panics
    /// Panics if `marginals.len() != graph.num_edges()`.
    pub fn from_parts(
        graph: Arc<RoadGraph>,
        model: Arc<HybridModel>,
        marginals: Arc<[Histogram]>,
        policy: CombinePolicy,
    ) -> Self {
        assert_eq!(
            marginals.len(),
            graph.num_edges(),
            "one marginal per edge required"
        );
        HybridCost {
            graph,
            model,
            marginals,
            policy,
        }
    }

    /// Convenience: marginals straight from a synthetic world's
    /// ground-truth oracle.
    pub fn from_ground_truth(
        world: &SyntheticWorld,
        model: &HybridModel,
        policy: CombinePolicy,
    ) -> Self {
        let marginals = world
            .graph
            .edge_ids()
            .map(|e| world.ground_truth.marginal(e).clone())
            .collect();
        Self::new(&world.graph, model, marginals, policy)
    }

    /// The underlying road network.
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// Shared handle to the underlying road network.
    pub fn graph_arc(&self) -> Arc<RoadGraph> {
        Arc::clone(&self.graph)
    }

    /// The hybrid model in use.
    pub fn model(&self) -> &HybridModel {
        &self.model
    }

    /// Shared handle to the hybrid model.
    pub fn model_arc(&self) -> Arc<HybridModel> {
        Arc::clone(&self.model)
    }

    /// Shared handle to the per-edge marginals.
    pub fn marginals_arc(&self) -> Arc<[Histogram]> {
        Arc::clone(&self.marginals)
    }

    /// Travel-time marginal of edge `e`.
    pub fn marginal(&self, e: EdgeId) -> &Histogram {
        &self.marginals[e.index()]
    }

    /// Combines the path-so-far distribution `pre` (whose last edge is
    /// `prev_edge`) with `next_edge` under the configured policy.
    ///
    /// A thin wrapper over [`HybridCost::combine_pooled`] (temporaries
    /// from the thread-local pool) — bit-identical to the pooled form by
    /// construction.
    pub fn combine(&self, pre: &Histogram, prev_edge: EdgeId, next_edge: EdgeId) -> Histogram {
        with_local_pool(|pool| self.combine_pooled(&pre.view(), prev_edge, next_edge, None, pool))
    }

    /// In-place core of the combine step: writes the combined masses into
    /// `out`, raw in the [`HistogramBuf`] sense (one normalization
    /// pending, applied by `out.into_histogram()`). Returns a
    /// [`CombineOutcome`] (which arm ran, and which convolution route).
    /// Temporaries — the mismatched-width projections, the gate's scratch
    /// row — come from `pool`; with a warm pool the step performs zero
    /// heap allocation.
    pub fn combine_into(
        &self,
        pre: &HistogramView<'_>,
        prev_edge: EdgeId,
        next_edge: EdgeId,
        out: &mut HistogramBuf,
        pool: &mut HistogramPool,
    ) -> CombineOutcome {
        let next_marginal = self.marginal(next_edge);
        match self.policy {
            CombinePolicy::Hybrid => self
                .model
                .combine_into(&self.graph, pre, prev_edge, next_edge, next_marginal, out, pool),
            CombinePolicy::AlwaysConvolve => {
                let route = self.model.convolve_into(pre, next_marginal, out, pool);
                CombineOutcome {
                    used_estimator: false,
                    route: Some(route),
                }
            }
            CombinePolicy::AlwaysEstimate => {
                let features =
                    pair_features_view(&self.graph, pre, prev_edge, next_edge, next_marginal);
                self.model.estimate_into(pre, next_marginal, &features, out);
                CombineOutcome {
                    used_estimator: true,
                    route: None,
                }
            }
        }
    }

    /// The search's combine-and-cap step on pooled storage: combines
    /// `pre` with `next_edge`, optionally re-bins the result down to
    /// `max_bins` buckets, and promotes it to a [`Histogram`] whose mass
    /// vector was drawn from `pool`. Equivalent — bit for bit — to
    /// `combine(..)` followed by `with_bins(max_bins)` when the result
    /// exceeds the cap; this is the one code path both the routing engine
    /// and the oracle router execute, which is what keeps their
    /// semantics identical.
    pub fn combine_pooled(
        &self,
        pre: &HistogramView<'_>,
        prev_edge: EdgeId,
        next_edge: EdgeId,
        max_bins: Option<usize>,
        pool: &mut HistogramPool,
    ) -> Histogram {
        self.combine_pooled_traced(pre, prev_edge, next_edge, max_bins, pool)
            .0
    }

    /// [`HybridCost::combine_pooled`] plus the step's [`CombineOutcome`]
    /// — the form the routing engine calls so its `lattice_fast_path`
    /// counter can tally shared-lattice convolutions without a second
    /// dispatch. The histogram returned is bit-identical to
    /// [`HybridCost::combine_pooled`]'s (that method delegates here).
    pub fn combine_pooled_traced(
        &self,
        pre: &HistogramView<'_>,
        prev_edge: EdgeId,
        next_edge: EdgeId,
        max_bins: Option<usize>,
        pool: &mut HistogramPool,
    ) -> (Histogram, CombineOutcome) {
        let mut out = pool.checkout();
        let outcome = self.combine_into(pre, prev_edge, next_edge, &mut out, pool);
        if let Some(cap) = max_bins {
            out.cap_bins(cap, pool).expect("bin cap is positive");
        }
        let h = out
            .into_histogram()
            .expect("combining valid histograms yields a valid histogram");
        (h, outcome)
    }

    /// Full travel-time distribution of a path (edges in travel order).
    /// Returns `None` for an empty path.
    pub fn path_distribution(&self, edges: &[EdgeId]) -> Option<Histogram> {
        with_local_pool(|pool| self.path_distribution_pooled(edges, pool))
    }

    /// [`HybridCost::path_distribution`] folding through `pool`: every
    /// intermediate prefix distribution is recycled, and the returned
    /// histogram's mass vector is checked out of the pool (it does *not*
    /// return on drop — recycle it explicitly to keep a pool's
    /// steady-state accounting allocation-free).
    pub fn path_distribution_pooled(
        &self,
        edges: &[EdgeId],
        pool: &mut HistogramPool,
    ) -> Option<Histogram> {
        let (&first, rest) = edges.split_first()?;
        let mut dist = self.marginal(first).pooled_clone(pool);
        let mut prev = first;
        for &e in rest {
            let next = self.combine_pooled(&dist.view(), prev, e, None, pool);
            pool.recycle(std::mem::replace(&mut dist, next));
            prev = e;
        }
        Some(dist)
    }

    /// On-time probability of a path under budget `t` seconds.
    pub fn prob_within(&self, edges: &[EdgeId], t: f64) -> f64 {
        match self.path_distribution(edges) {
            Some(d) => d.prob_within(t),
            None => 1.0, // the empty path arrives instantly
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::training::{train_hybrid, TrainingConfig};
    use srt_ml::forest::ForestConfig;
    use srt_synth::WorldConfig;

    fn setup() -> (SyntheticWorld, HybridModel) {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let cfg = TrainingConfig {
            train_pairs: 120,
            test_pairs: 40,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(&world, &cfg).unwrap();
        (world, model)
    }

    #[test]
    fn path_distribution_mean_grows_with_length() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let traj = &world.trajectories[0];
        let mut last_mean = 0.0;
        for k in 1..=traj.edges.len().min(6) {
            let d = cost.path_distribution(&traj.edges[..k]).unwrap();
            assert!(d.mean() > last_mean, "mean must grow along the path");
            last_mean = d.mean();
        }
    }

    #[test]
    fn empty_path_has_no_distribution_but_prob_one() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        assert!(cost.path_distribution(&[]).is_none());
        assert_eq!(cost.prob_within(&[], 10.0), 1.0);
    }

    #[test]
    fn single_edge_distribution_is_the_marginal() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let e = EdgeId(0);
        assert_eq!(cost.path_distribution(&[e]).unwrap(), *cost.marginal(e));
    }

    #[test]
    fn policies_differ_on_some_path() {
        let (world, model) = setup();
        let hybrid = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let conv = HybridCost::from_ground_truth(&world, &model, CombinePolicy::AlwaysConvolve);
        let est = HybridCost::from_ground_truth(&world, &model, CombinePolicy::AlwaysEstimate);
        // Find a trajectory long enough that the policies diverge.
        let mut any_diff = false;
        for traj in world.trajectories.iter().take(20) {
            if traj.edges.len() < 4 {
                continue;
            }
            let edges = &traj.edges[..4];
            let dc = conv.path_distribution(edges).unwrap();
            let de = est.path_distribution(edges).unwrap();
            let dh = hybrid.path_distribution(edges).unwrap();
            if dc != de || dh != dc {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "policies never diverged");
    }

    #[test]
    fn prob_within_is_monotone_in_budget() {
        let (world, model) = setup();
        let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
        let traj = &world.trajectories[0];
        let edges = &traj.edges[..traj.edges.len().min(5)];
        let d = cost.path_distribution(edges).unwrap();
        let budgets = [d.start(), d.mean(), d.end()];
        let probs: Vec<f64> = budgets.iter().map(|&b| cost.prob_within(edges, b)).collect();
        assert!(probs[0] <= probs[1] && probs[1] <= probs[2]);
        assert!(probs[2] >= 0.99);
    }

    #[test]
    #[should_panic(expected = "one marginal per edge")]
    fn mismatched_marginals_panic() {
        let (world, model) = setup();
        let _ = HybridCost::new(&world.graph, &model, vec![], CombinePolicy::Hybrid);
    }
}
