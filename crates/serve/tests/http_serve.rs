//! End-to-end certification of the serving layer over real sockets:
//!
//! * **parity** — `POST /route` answers are bitwise-identical
//!   (probability, distribution, path, counters) to calling
//!   `RoutingEngine::route` in-process,
//! * **protocol** — malformed JSON is `400`, typed engine rejections
//!   are `422` with machine-readable kinds, wrong methods are `405`,
//!   unknown paths `404`,
//! * **admission** — a full queue sheds with an immediate `503` and a
//!   `shed_total` increment while admitted connections still complete,
//! * **containment** — a query that panics mid-search returns an inline
//!   `500`-kind error in its batch without failing batch-mates, and the
//!   server keeps serving afterwards,
//! * **drain** — graceful shutdown finishes every admitted connection
//!   (zero in-flight afterwards, all responses delivered),
//! * **hot swap** — `POST /reload` publishes a new engine epoch with
//!   zero dropped connections, a corrupt snapshot answers `422` while
//!   the old epoch keeps serving, and a server without a model path
//!   answers `409`,
//! * **idle reap** — a parked keep-alive connection stops pinning its
//!   worker once [`ServerConfig::idle_timeout`] elapses.

use srt_core::model::training::{train_hybrid, TrainingConfig};
use srt_core::routing::{EngineBuilder, Query, RoutingEngine};
use srt_core::{CombinePolicy, HybridCost, HybridModel};
use srt_ml::forest::ForestConfig;
use srt_serve::client::{request_once, Client};
use srt_serve::json::{self, Json};
use srt_serve::{Server, ServerConfig};
use srt_synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn fixture() -> &'static (SyntheticWorld, HybridModel) {
    static FIX: OnceLock<(SyntheticWorld, HybridModel)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let cfg = TrainingConfig {
            train_pairs: 120,
            test_pairs: 40,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(&world, &cfg).expect("fixture trains");
        (world, model)
    })
}

fn cost() -> HybridCost {
    let (world, model) = fixture();
    HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid)
}

/// One engine shared by most tests (each test runs its own server on an
/// ephemeral port over it; tests therefore never assert absolute engine
/// counter values, only server-local metrics).
fn shared_engine() -> Arc<RoutingEngine> {
    static ENGINE: OnceLock<Arc<RoutingEngine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| Arc::new(EngineBuilder::new(cost()).build())))
}

fn workload(seed: u64, n: usize) -> Vec<Query> {
    let (world, _) = fixture();
    QueryGenerator::new(seed)
        .generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, n)
        .iter()
        .map(Query::from)
        .collect()
}

fn start(config: ServerConfig) -> Server {
    Server::start(shared_engine(), "127.0.0.1:0", config).expect("bind ephemeral port")
}

fn query_body(q: &Query) -> String {
    format!(
        "{{\"source\":{},\"target\":{},\"budget_s\":{:?}}}",
        q.source.0, q.target.0, q.budget_s
    )
}

/// Full bitwise comparison of a served JSON document against an
/// in-process `RouteResult` (everything except wall-clock `elapsed_us`).
fn assert_served_identical(doc: &Json, reference: &srt_core::routing::RouteResult, what: &str) {
    let prob = doc.get("probability").and_then(|p| p.as_f64()).unwrap();
    assert_eq!(
        prob.to_bits(),
        reference.probability.to_bits(),
        "{what}: probability {prob} != {}",
        reference.probability
    );
    match (&reference.path, doc.get("path")) {
        (None, Some(Json::Null)) => {}
        (Some(p), Some(served)) => {
            let nodes: Vec<u64> = served.get("nodes").and_then(|n| n.as_arr()).unwrap()
                .iter().map(|n| n.as_u64().unwrap()).collect();
            let edges: Vec<u64> = served.get("edges").and_then(|e| e.as_arr()).unwrap()
                .iter().map(|e| e.as_u64().unwrap()).collect();
            let want_nodes: Vec<u64> = p.nodes.iter().map(|n| n.0 as u64).collect();
            let want_edges: Vec<u64> = p.edges.iter().map(|e| e.0 as u64).collect();
            assert_eq!(nodes, want_nodes, "{what}: path nodes differ");
            assert_eq!(edges, want_edges, "{what}: path edges differ");
        }
        other => panic!("{what}: path presence mismatch: {other:?}"),
    }
    match (&reference.distribution, doc.get("distribution")) {
        (None, Some(Json::Null)) => {}
        (Some(d), Some(served)) => {
            let start = served.get("start").and_then(|x| x.as_f64()).unwrap();
            let width = served.get("width").and_then(|x| x.as_f64()).unwrap();
            assert_eq!(start.to_bits(), d.start().to_bits(), "{what}: start");
            assert_eq!(width.to_bits(), d.width().to_bits(), "{what}: width");
            let probs = served.get("probs").and_then(|p| p.as_arr()).unwrap();
            assert_eq!(probs.len(), d.probs().len(), "{what}: bin count");
            for (i, (served_p, want)) in probs.iter().zip(d.probs()).enumerate() {
                assert_eq!(
                    served_p.as_f64().unwrap().to_bits(),
                    want.to_bits(),
                    "{what}: probs[{i}]"
                );
            }
        }
        other => panic!("{what}: distribution presence mismatch: {other:?}"),
    }
    let stats = doc.get("stats").unwrap();
    let counter = |name: &str| stats.get(name).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(counter("labels_created"), reference.stats.labels_created as u64, "{what}");
    assert_eq!(counter("labels_expanded"), reference.stats.labels_expanded as u64, "{what}");
    assert_eq!(
        stats.get("completed").and_then(|v| v.as_bool()).unwrap(),
        reference.stats.completed,
        "{what}"
    );
}

#[test]
fn healthz_answers_and_metrics_render() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let health = request_once(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    // The engine is shared across tests (a reload test may have bumped
    // its epoch), so assert shape, not the epoch value.
    let doc = json::parse(&health.text()).expect("healthz is JSON");
    assert_eq!(doc.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert!(doc.get("epoch").and_then(|v| v.as_u64()).is_some());

    let metrics = request_once(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let page = metrics.text();
    for family in [
        "srt_serve_accepted_total",
        "srt_serve_shed_total",
        "srt_serve_request_seconds_bucket",
        "srt_engine_queries_total",
        "srt_engine_panics_total",
    ] {
        assert!(page.contains(family), "missing {family} in:\n{page}");
    }
    server.shutdown();
}

#[test]
fn served_routes_are_bitwise_identical_to_the_engine() {
    let server = start(ServerConfig::default());
    let engine = shared_engine();
    let mut conn = Client::connect(server.local_addr()).unwrap();
    for (i, q) in workload(0xA11CE, 10).iter().enumerate() {
        let reference = engine.route(q).expect("workload queries are valid");
        let resp = conn.request("POST", "/route", Some(&query_body(q))).unwrap();
        assert_eq!(resp.status, 200, "query {i}: {}", resp.text());
        let doc = json::parse(&resp.text()).expect("response is valid JSON");
        assert_served_identical(&doc, &reference, &format!("query {i}"));
    }
    server.shutdown();
}

#[test]
fn batch_over_http_matches_sequential_routes() {
    let server = start(ServerConfig::default());
    let engine = shared_engine();
    let queries = workload(0xBA7C4, 8);
    let mut body = String::from("{\"queries\":[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&query_body(q));
    }
    body.push_str("],\"parallelism\":4}");
    let resp = request_once(server.local_addr(), "POST", "/route_batch", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = json::parse(&resp.text()).unwrap();
    let results = doc.get("results").and_then(|r| r.as_arr()).unwrap();
    assert_eq!(results.len(), queries.len());
    for (i, (served, q)) in results.iter().zip(&queries).enumerate() {
        let reference = engine.route(q).unwrap();
        assert_served_identical(served, &reference, &format!("batch[{i}]"));
    }
    server.shutdown();
}

#[test]
fn protocol_and_semantic_failures_map_to_distinct_statuses() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let num_nodes = shared_engine().cost().graph().num_nodes();

    // Unparseable JSON: 400 at the protocol layer.
    let resp = request_once(addr, "POST", "/route", Some("{not json")).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("bad_request"), "{}", resp.text());

    // Schema violation: 400 with the member named.
    let resp = request_once(addr, "POST", "/route", Some("{\"source\":1}")).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("target"), "{}", resp.text());

    // Well-formed but semantically impossible: 422 with the typed kind.
    let out_of_range = format!(
        "{{\"source\":{num_nodes},\"target\":0,\"budget_s\":100.0}}"
    );
    let resp = request_once(addr, "POST", "/route", Some(&out_of_range)).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.text());
    let doc = json::parse(&resp.text()).unwrap();
    let err = doc.get("error").unwrap();
    assert_eq!(err.get("kind").unwrap().as_str(), Some("node_out_of_range"));
    assert_eq!(err.get("node").unwrap().as_u64(), Some(num_nodes as u64));
    assert_eq!(err.get("num_nodes").unwrap().as_u64(), Some(num_nodes as u64));

    // The negative-budget validation gap this PR closed, observed on
    // the wire: 422 invalid_budget, not a silent degenerate 200.
    let resp = request_once(
        addr,
        "POST",
        "/route",
        Some("{\"source\":0,\"target\":1,\"budget_s\":-5.0}"),
    )
    .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.text());
    let doc = json::parse(&resp.text()).unwrap();
    assert_eq!(
        doc.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("invalid_budget")
    );

    // Wrong method / unknown path. Known paths answer 405 for *any*
    // unsupported method (not a misleading 404); 404 is reserved for
    // genuinely unknown paths.
    let resp = request_once(addr, "GET", "/route", None).unwrap();
    assert_eq!(resp.status, 405);
    let resp = request_once(addr, "POST", "/healthz", Some("{}")).unwrap();
    assert_eq!(resp.status, 405);
    let resp = request_once(addr, "DELETE", "/route", None).unwrap();
    assert_eq!(resp.status, 405, "{}", resp.text());
    let resp = request_once(addr, "HEAD", "/metrics", None).unwrap();
    assert_eq!(resp.status, 405, "{}", resp.text());
    let resp = request_once(addr, "GET", "/nope", None).unwrap();
    assert_eq!(resp.status, 404);
    let resp = request_once(addr, "DELETE", "/nope", None).unwrap();
    assert_eq!(resp.status, 404);

    // Non-HTTP bytes: 400 and the connection closes.
    let mut raw = Client::connect(addr).unwrap();
    raw.send_raw(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let resp = raw.read_response().unwrap();
    assert_eq!(resp.status, 400);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_503_while_admitted_work_completes() {
    // One worker, one queue slot: the third concurrent connection must
    // be refused at admission.
    let server = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let q = workload(0x5ED, 1)[0];

    // C1: admitted and popped by the worker, which then blocks reading.
    let mut c1 = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.queue_depth() != 0 || server.metrics().accepted_total.load(Ordering::Relaxed) < 1
    {
        assert!(Instant::now() < deadline, "worker never picked up C1");
        std::thread::sleep(Duration::from_millis(2));
    }
    // C2: admitted, parked in the queue's only slot.
    let mut c2 = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.queue_depth() != 1 {
        assert!(Instant::now() < deadline, "C2 never reached the queue");
        std::thread::sleep(Duration::from_millis(2));
    }

    // C3: the queue is full — shed with an immediate 503.
    let shed_before = server.metrics().shed_total.load(Ordering::Relaxed);
    let mut c3 = Client::connect(addr).unwrap();
    let resp = c3.request("POST", "/route", Some(&query_body(&q))).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert!(resp.text().contains("overloaded"), "{}", resp.text());
    assert_eq!(
        server.metrics().shed_total.load(Ordering::Relaxed),
        shed_before + 1,
        "shed_total must count the refusal"
    );

    // The admitted connections were never harmed: both complete.
    let resp = c1.request("POST", "/route", Some(&query_body(&q))).unwrap();
    assert_eq!(resp.status, 200);
    drop(c1); // frees the worker for C2
    let resp = c2.request("POST", "/route", Some(&query_body(&q))).unwrap();
    assert_eq!(resp.status, 200);
    drop(c2);
    let report = server.shutdown();
    assert_eq!(report.in_flight_after_drain, 0);
    assert_eq!(report.connections_shed, shed_before + 1);
}

#[test]
fn panicking_query_in_a_batch_is_isolated_on_the_wire() {
    // A rigged engine: routing (victim.source -> victim.target) panics
    // mid-search. The server must answer the batch anyway, with the
    // victim as an inline typed error and batch-mates bitwise intact.
    // Deduplicate endpoint pairs so only index 2 trips the rig.
    let mut queries = workload(0xFA17, 12);
    let mut seen = std::collections::HashSet::new();
    queries.retain(|q| seen.insert((q.source, q.target)));
    queries.truncate(6);
    assert!(queries.len() == 6, "fixture workload too repetitive");
    let victim = queries[2];
    let rigged = Arc::new(
        EngineBuilder::new(cost())
            .panic_on_query(victim.source, victim.target)
            .build(),
    );
    let healthy = shared_engine();
    let server = Server::start(Arc::clone(&rigged), "127.0.0.1:0", ServerConfig::default())
        .expect("bind");

    let mut body = String::from("{\"queries\":[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&query_body(q));
    }
    body.push_str("],\"parallelism\":2}");
    let mut conn = Client::connect(server.local_addr()).unwrap();
    let resp = conn.request("POST", "/route_batch", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "a contained panic must not fail the batch");
    let doc = json::parse(&resp.text()).unwrap();
    let results = doc.get("results").and_then(|r| r.as_arr()).unwrap();
    assert_eq!(results.len(), queries.len());
    for (i, (served, q)) in results.iter().zip(&queries).enumerate() {
        if i == 2 {
            let err = served.get("error").expect("victim is an inline error");
            assert_eq!(err.get("kind").unwrap().as_str(), Some("internal"));
        } else {
            let reference = healthy.route(q).unwrap();
            assert_served_identical(served, &reference, &format!("batch-mate {i}"));
        }
    }

    // A single /route of the victim is a 500 with the typed kind...
    let resp = conn
        .request("POST", "/route", Some(&query_body(&victim)))
        .unwrap();
    assert_eq!(resp.status, 500, "{}", resp.text());
    let doc = json::parse(&resp.text()).unwrap();
    assert_eq!(
        doc.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("internal")
    );

    // ...and the server remains fully serviceable on the same
    // keep-alive connection.
    let resp = conn
        .request("POST", "/route", Some(&query_body(&queries[0])))
        .unwrap();
    assert_eq!(resp.status, 200);
    let page = conn.request("GET", "/metrics", None).unwrap().text();
    let panics = page
        .lines()
        .find(|l| l.starts_with("srt_engine_panics_total "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap();
    assert!(panics >= 2, "both contained panics are counted, got {panics}");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_connections_losslessly() {
    let server = start(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        read_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let queries = workload(0xD1A1, 4);

    // In-flight sessions started before the drain begins.
    let clients: Vec<_> = (0..4)
        .map(|_| Client::connect(addr).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().accepted_total.load(Ordering::Relaxed) < 4 {
        assert!(Instant::now() < deadline, "connections never admitted");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Shut down concurrently with the requests still being issued.
    let driver = std::thread::spawn(move || {
        clients
            .into_iter()
            .zip(queries)
            .map(|(mut c, q)| {
                let resp = c.request("POST", "/route", Some(&query_body(&q)))?;
                Ok::<_, std::io::Error>(resp.status)
            })
            .collect::<Vec<_>>()
    });
    std::thread::sleep(Duration::from_millis(10));
    let report = server.shutdown();
    let statuses = driver.join().expect("driver thread");

    // Every admitted connection got a real answer — the drain dropped
    // nothing (responses during the drain may carry Connection: close,
    // which the client tolerates since it reads by Content-Length).
    for (i, s) in statuses.iter().enumerate() {
        assert_eq!(
            *s.as_ref().expect("admitted connection must be answered"),
            200,
            "connection {i}"
        );
    }
    assert_eq!(report.in_flight_after_drain, 0);
    assert!(report.connections_served >= 4);

    // The listener is really gone.
    assert!(Client::connect(addr).is_err() || {
        // A TIME_WAIT race can accept then reset; a request must fail.
        request_once(addr, "GET", "/healthz", None).is_err()
    });
}

#[test]
fn reload_publishes_a_new_epoch_and_rejects_corrupt_snapshots() {
    // A private engine (not `shared_engine`): this test moves the epoch
    // and must not perturb what other tests observe.
    let (_, model) = fixture();
    let engine = Arc::new(EngineBuilder::new(cost()).build());
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    let snapshot = dir.join("http_serve_reload.bin");
    srt_core::model::io::write_file(&snapshot, model).expect("snapshot writes");

    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            model_path: Some(snapshot.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut conn = Client::connect(server.local_addr()).unwrap();
    let queries = workload(0x4E10AD, 6);
    let before: Vec<_> = queries.iter().map(|q| engine.route(q).unwrap()).collect();

    // Successful reload: 200, epoch 0 -> 1, visible in /healthz, on the
    // same keep-alive connection that keeps being served.
    let resp = conn.request("POST", "/reload", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = json::parse(&resp.text()).unwrap();
    assert_eq!(doc.get("epoch").and_then(|v| v.as_u64()), Some(1));
    let health = conn.request("GET", "/healthz", None).unwrap();
    let doc = json::parse(&health.text()).unwrap();
    assert_eq!(doc.get("epoch").and_then(|v| v.as_u64()), Some(1));

    // The snapshot round-trips the identical model, so answers on the
    // new epoch are bitwise-identical to the old ones.
    for (i, (q, reference)) in queries.iter().zip(&before).enumerate() {
        let resp = conn.request("POST", "/route", Some(&query_body(q))).unwrap();
        assert_eq!(resp.status, 200, "post-swap query {i}");
        let doc = json::parse(&resp.text()).unwrap();
        assert_served_identical(&doc, reference, &format!("post-swap query {i}"));
    }

    // Corrupt the file: /reload answers 422 and the old epoch keeps
    // serving, bitwise-unchanged.
    let good = std::fs::read(&snapshot).unwrap();
    std::fs::write(&snapshot, &good[..good.len() / 2]).unwrap();
    let resp = conn.request("POST", "/reload", None).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.text());
    assert!(resp.text().contains("bad_snapshot"), "{}", resp.text());
    assert_eq!(engine.epoch(), 1, "failed reload must not move the epoch");
    let resp = conn
        .request("POST", "/route", Some(&query_body(&queries[0])))
        .unwrap();
    assert_eq!(resp.status, 200);
    let doc = json::parse(&resp.text()).unwrap();
    assert_served_identical(&doc, &before[0], "post-rejection probe");

    // A vanished file is the server's problem (500), not the snapshot's.
    std::fs::remove_file(&snapshot).unwrap();
    let resp = conn.request("POST", "/reload", None).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.text());
    assert!(resp.text().contains("reload_io"), "{}", resp.text());
    assert_eq!(engine.epoch(), 1);
    server.shutdown();
}

#[test]
fn reload_without_a_model_source_is_a_409() {
    // `shared_engine` servers are started without a model_path, so
    // /reload must refuse — pinning that the endpoint never invents a
    // model source (and never reads a client-supplied one).
    let server = start(ServerConfig::default());
    let resp = request_once(server.local_addr(), "POST", "/reload", None).unwrap();
    assert_eq!(resp.status, 409, "{}", resp.text());
    assert!(resp.text().contains("no_model_source"), "{}", resp.text());
    let resp = request_once(server.local_addr(), "GET", "/reload", None).unwrap();
    assert_eq!(resp.status, 405, "{}", resp.text());
    server.shutdown();
}

#[test]
fn idle_keepalive_connections_are_reaped_not_worker_pinning() {
    // One worker. Before the idle deadline existed, connection A could
    // finish a request, park forever, and pin the only worker — B would
    // never be served. Now A's socket gets an idle read deadline after
    // its first response, the worker reaps it, and B proceeds.
    let server = start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut a = Client::connect(addr).unwrap();
    let resp = a.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    // A now parks, holding the only worker.

    let started = Instant::now();
    let mut b = Client::connect(addr).unwrap();
    let resp = b.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200, "B must be served after A is reaped");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "B waited {:?} — A was never reaped",
        started.elapsed()
    );

    // A's socket was closed by the reap: the next request on it fails.
    assert!(
        a.request("GET", "/healthz", None).is_err(),
        "reaped connection must be closed, not resurrected"
    );
    drop(b);
    server.shutdown();
}
