//! End-to-end certification of the continuous-batching planes over
//! real sockets (`ServerConfig::max_batch > 1`):
//!
//! * **parity** — `POST /route` answers under concurrent batched
//!   dispatch are bitwise-identical to `RoutingEngine::route`
//!   in-process, and `/route_batch` matches too,
//! * **pipelining** — many requests written in one burst are all
//!   parsed and answered, strictly in request order, with cheap
//!   endpoints interleaved between engine-bound ones,
//! * **request-granular shedding** — a full dispatch queue costs the
//!   overflowing *requests* a `503` while the connection survives and
//!   keeps being served,
//! * **drain** — graceful shutdown answers every admitted request
//!   (zero in flight afterwards), even mid-pipeline,
//! * **connection scaling** — hundreds of parked keep-alive
//!   connections cost scan slots, not threads, and the server stays
//!   responsive behind them.

use srt_core::model::training::{train_hybrid, TrainingConfig};
use srt_core::routing::{EngineBuilder, Query, RoutingEngine};
use srt_core::{CombinePolicy, HybridCost, HybridModel};
use srt_ml::forest::ForestConfig;
use srt_serve::client::Client;
use srt_serve::json::{self, Json};
use srt_serve::{Server, ServerConfig};
use srt_synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn fixture() -> &'static (SyntheticWorld, HybridModel) {
    static FIX: OnceLock<(SyntheticWorld, HybridModel)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let cfg = TrainingConfig {
            train_pairs: 120,
            test_pairs: 40,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(&world, &cfg).expect("fixture trains");
        (world, model)
    })
}

fn shared_engine() -> Arc<RoutingEngine> {
    static ENGINE: OnceLock<Arc<RoutingEngine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        let (world, model) = fixture();
        let cost = HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid);
        Arc::new(EngineBuilder::new(cost).build())
    }))
}

fn workload(seed: u64, n: usize) -> Vec<Query> {
    let (world, _) = fixture();
    QueryGenerator::new(seed)
        .generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, n)
        .iter()
        .map(Query::from)
        .collect()
}

fn batched_config() -> ServerConfig {
    ServerConfig {
        workers: 1,
        max_batch: 8,
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> Server {
    Server::start(shared_engine(), "127.0.0.1:0", config).expect("bind ephemeral port")
}

fn query_body(q: &Query) -> String {
    format!(
        "{{\"source\":{},\"target\":{},\"budget_s\":{:?}}}",
        q.source.0, q.target.0, q.budget_s
    )
}

fn route_request_bytes(q: &Query) -> Vec<u8> {
    let body = query_body(q);
    format!(
        "POST /route HTTP/1.1\r\nHost: srt-serve\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Bitwise comparison of a served `/route` document against the
/// in-process reference (same checks as the legacy suite).
fn assert_served_identical(doc: &Json, reference: &srt_core::routing::RouteResult, what: &str) {
    let prob = doc.get("probability").and_then(|p| p.as_f64()).unwrap();
    assert_eq!(
        prob.to_bits(),
        reference.probability.to_bits(),
        "{what}: probability differs"
    );
    match (&reference.path, doc.get("path")) {
        (None, Some(Json::Null)) => {}
        (Some(p), Some(served)) => {
            let nodes: Vec<u64> = served
                .get("nodes")
                .and_then(|n| n.as_arr())
                .unwrap()
                .iter()
                .map(|n| n.as_u64().unwrap())
                .collect();
            let want: Vec<u64> = p.nodes.iter().map(|n| n.0 as u64).collect();
            assert_eq!(nodes, want, "{what}: path nodes differ");
        }
        other => panic!("{what}: path presence mismatch: {other:?}"),
    }
    if let (Some(d), Some(served)) = (&reference.distribution, doc.get("distribution")) {
        let probs = served.get("probs").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(probs.len(), d.probs().len(), "{what}: bin count");
        for (i, (served_p, want)) in probs.iter().zip(d.probs()).enumerate() {
            assert_eq!(
                served_p.as_f64().unwrap().to_bits(),
                want.to_bits(),
                "{what}: probs[{i}]"
            );
        }
    }
}

fn metric_sample(page: &str, name: &str) -> u64 {
    page.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no sample {name} in:\n{page}"))
}

#[test]
fn batched_routes_are_bitwise_identical_under_concurrency() {
    let server = start(batched_config());
    let addr = server.local_addr();
    let engine = shared_engine();

    // Four concurrent keep-alive clients: enough simultaneous requests
    // that the dispatch plane actually coalesces multi-request batches
    // while each client checks its own answers bitwise.
    let drivers: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut conn = Client::connect(addr).unwrap();
                for (i, q) in workload(0xBA7 + c, 12).iter().enumerate() {
                    let reference = engine.route(q).expect("workload queries are valid");
                    let resp = conn.request("POST", "/route", Some(&query_body(q))).unwrap();
                    assert_eq!(resp.status, 200, "client {c} query {i}: {}", resp.text());
                    let doc = json::parse(&resp.text()).unwrap();
                    assert_served_identical(&doc, &reference, &format!("client {c} query {i}"));
                }
            })
        })
        .collect();
    for d in drivers {
        d.join().expect("driver panicked");
    }

    // /route_batch rides the same planes and must match too.
    let queries = workload(0xBB17, 6);
    let mut body = String::from("{\"queries\":[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&query_body(q));
    }
    body.push_str("],\"parallelism\":2}");
    let mut conn = Client::connect(addr).unwrap();
    let resp = conn.request("POST", "/route_batch", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = json::parse(&resp.text()).unwrap();
    let results = doc.get("results").and_then(|r| r.as_arr()).unwrap();
    for (i, (served, q)) in results.iter().zip(&queries).enumerate() {
        let reference = engine.route(q).unwrap();
        assert_served_identical(served, &reference, &format!("batch[{i}]"));
    }

    // /reload without a model source still answers its 409 through the
    // dispatch planes, and the new metric families are live.
    let resp = conn.request("POST", "/reload", None).unwrap();
    assert_eq!(resp.status, 409, "{}", resp.text());
    let page = conn.request("GET", "/metrics", None).unwrap().text();
    assert!(metric_sample(&page, "srt_serve_batch_size_count") > 0);
    // 48 routes + the /route_batch request (one work item however many
    // queries it carries) + the /reload.
    assert!(metric_sample(&page, "srt_serve_batch_size_sum") >= 50);
    let _ = metric_sample(&page, "srt_serve_inflight_requests");
    assert_eq!(
        metric_sample(&page, "srt_serve_requests_total"),
        metric_sample(&page, "srt_serve_request_seconds_count"),
        "scrape coherence must hold in batched mode"
    );
    drop(conn);
    let report = server.shutdown();
    assert_eq!(report.in_flight_after_drain, 0);
}

#[test]
fn pipelined_requests_are_answered_in_request_order() {
    let server = start(batched_config());
    let engine = shared_engine();
    let queries = workload(0x919E, 3);
    let references: Vec<_> = queries.iter().map(|q| engine.route(q).unwrap()).collect();

    // One burst: route, healthz, route, bogus path, route, healthz —
    // six requests on the wire before the first response is read.
    let mut burst = Vec::new();
    burst.extend_from_slice(&route_request_bytes(&queries[0]));
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    burst.extend_from_slice(&route_request_bytes(&queries[1]));
    burst.extend_from_slice(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    burst.extend_from_slice(&route_request_bytes(&queries[2]));
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");

    let mut conn = Client::connect(server.local_addr()).unwrap();
    conn.send_raw(&burst).unwrap();
    let statuses: Vec<u16> = (0..6)
        .map(|i| {
            let resp = conn.read_response().unwrap_or_else(|e| {
                panic!("pipelined response {i} never arrived: {e}")
            });
            if [0, 2, 4].contains(&i) {
                let doc = json::parse(&resp.text()).unwrap();
                assert_served_identical(
                    &doc,
                    &references[i / 2],
                    &format!("pipelined route {}", i / 2),
                );
            }
            resp.status
        })
        .collect();
    // Request order, not completion order: the interleaved cheap
    // endpoints answered instantly but still waited their turn.
    assert_eq!(statuses, vec![200, 200, 200, 404, 200, 200]);
    assert!(
        server.metrics().pipelined_total.load(Ordering::Relaxed) > 0,
        "the burst must register as pipelined traffic"
    );
    server.shutdown();
}

#[test]
fn full_dispatch_queue_sheds_requests_not_the_connection() {
    // A one-slot dispatch queue behind a 64-request burst: most of the
    // burst must be refused — but per request, in order, and the
    // connection must remain fully usable afterwards.
    let server = start(ServerConfig {
        workers: 1,
        max_batch: 4,
        queue_capacity: 1,
        read_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    });
    let q = workload(0x5ED2, 1)[0];
    let one = route_request_bytes(&q);
    let burst: Vec<u8> = one
        .iter()
        .copied()
        .cycle()
        .take(one.len() * 64)
        .collect();

    let mut conn = Client::connect(server.local_addr()).unwrap();
    conn.send_raw(&burst).unwrap();
    let mut ok = 0u32;
    let mut shed = 0u32;
    for i in 0..64 {
        let resp = conn
            .read_response()
            .unwrap_or_else(|e| panic!("response {i} never arrived: {e}"));
        match resp.status {
            200 => ok += 1,
            503 => {
                shed += 1;
                assert!(resp.text().contains("overloaded"), "{}", resp.text());
            }
            other => panic!("response {i}: unexpected status {other}"),
        }
    }
    assert!(ok >= 1, "at least the head of the burst is served");
    assert!(shed >= 1, "a one-slot queue cannot absorb a 64-burst");
    assert!(
        server.metrics().shed_total.load(Ordering::Relaxed) >= u64::from(shed),
        "request-granular sheds must be counted"
    );

    // The same connection lives on and is served normally.
    let resp = conn.request("POST", "/route", Some(&query_body(&q))).unwrap();
    assert_eq!(resp.status, 200, "shed connection must survive: {}", resp.text());
    drop(conn);
    let report = server.shutdown();
    assert_eq!(report.in_flight_after_drain, 0);
}

#[test]
fn graceful_drain_answers_every_admitted_pipelined_request() {
    let server = start(ServerConfig {
        workers: 1,
        max_batch: 8,
        queue_capacity: 64,
        read_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    });
    let queries = workload(0xD2A1, 16);
    let mut burst = Vec::new();
    for q in &queries {
        burst.extend_from_slice(&route_request_bytes(q));
    }

    let mut conn = Client::connect(server.local_addr()).unwrap();
    conn.send_raw(&burst).unwrap();
    // Give the readiness loop a moment to parse and admit the burst,
    // then shut down while responses are still streaming back.
    std::thread::sleep(Duration::from_millis(5));
    let reader = std::thread::spawn(move || {
        (0..16)
            .map(|i| {
                conn.read_response()
                    .unwrap_or_else(|e| panic!("drained request {i} was dropped: {e}"))
                    .status
            })
            .collect::<Vec<_>>()
    });
    let report = server.shutdown();
    let statuses = reader.join().expect("reader panicked");

    // Every request the server admitted is answered — 200 from the
    // engine or a request-granular 503 if the drain's queue close beat
    // its admission. Nothing may be silently dropped.
    assert_eq!(statuses.len(), 16);
    for (i, s) in statuses.iter().enumerate() {
        assert!(
            *s == 200 || *s == 503,
            "request {i}: unexpected status {s}"
        );
    }
    assert_eq!(report.in_flight_after_drain, 0);
}

#[test]
fn parked_keepalive_fleet_holds_without_thread_per_connection() {
    fn thread_count() -> u64 {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(0)
    }

    let server = start(ServerConfig {
        workers: 1,
        max_batch: 8,
        // Parked peers are reaped by deadline in production; here they
        // must survive the whole test.
        idle_timeout: None,
        max_connections: 1024,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let before = thread_count();

    // 256 connections, each served one request, then parked open.
    let mut fleet: Vec<Client> = Vec::with_capacity(256);
    for i in 0..256 {
        let mut c = Client::connect(addr).unwrap();
        let resp = c.request("GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200, "fleet member {i}");
        fleet.push(c);
    }
    let after = thread_count();
    if before > 0 && after > 0 {
        assert!(
            after.saturating_sub(before) < 32,
            "256 parked connections grew the process by {} threads — \
             that is thread-per-connection",
            after.saturating_sub(before)
        );
    }

    // The server is still responsive behind the parked fleet.
    let q = workload(0x1D1E, 1)[0];
    let started = Instant::now();
    let mut live = Client::connect(addr).unwrap();
    let resp = live.request("POST", "/route", Some(&query_body(&q))).unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "a new connection waited {:?} behind parked peers",
        started.elapsed()
    );

    drop(live);
    drop(fleet);
    let report = server.shutdown();
    assert_eq!(report.in_flight_after_drain, 0);
    assert!(report.connections_served >= 257);
}
