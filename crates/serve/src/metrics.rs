//! Server-side counters and the Prometheus text exposition behind
//! `GET /metrics`.
//!
//! Two metric families share the page: `srt_serve_*` (owned here —
//! admission, shedding, response classes, request latency, batching)
//! and `srt_engine_*` (projected from the live
//! [`srt_core::routing::StatsSnapshot`] at scrape time). Everything is
//! lock-free atomics, so recording on the hot path costs a handful of
//! relaxed increments.
//!
//! # Scrape coherence
//!
//! `srt_serve_requests_total` and the `srt_serve_request_seconds`
//! histogram are updated together inside one
//! [`SeqLock`](srt_core::sync::SeqLock) write section, and the page
//! render runs as a seqlock read — so a scrape can never observe a
//! request counted in one but not the other. (The committed
//! `BENCH_serve.json` once showed `requests_total 1248` against
//! `request_seconds_count 1247`: the count was bumped at parse time,
//! the histogram at response time, and the scrape's own request sat in
//! the gap. Both now move at response time, atomically-enough, which
//! also excludes the in-progress scrape itself consistently.)

use srt_core::routing::StatsSnapshot;
use srt_core::sync::SeqLock;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (seconds) of the request-latency histogram buckets; an
/// implicit `+Inf` bucket follows. Spans 50µs–2.5s: everything a tiny
/// in-process search or a saturated queue can plausibly produce.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 0.5, 2.5,
];

/// A fixed-bucket cumulative histogram in the Prometheus style.
pub struct LatencyHistogram {
    /// Per-bucket counts (`LATENCY_BUCKETS_S` plus the `+Inf` bucket),
    /// stored non-cumulative; the render accumulates.
    buckets: [AtomicU64; LATENCY_BUCKETS_S.len() + 1],
    /// Sum of observed values in nanoseconds (integer atomics keep the
    /// recorder lock-free; the render divides back to seconds).
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let idx = LATENCY_BUCKETS_S
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(LATENCY_BUCKETS_S.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add(elapsed.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at (approximately) quantile `q` in seconds, resolved to
    /// the upper bound of the bucket the quantile lands in. Used by the
    /// bench harness and overload assertions — coarse on purpose.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return LATENCY_BUCKETS_S.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }

    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS_S.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le:?}\"}} {cumulative}");
        }
        cumulative += self.buckets[LATENCY_BUCKETS_S.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let sum_s = self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let _ = writeln!(out, "{name}_sum {sum_s:?}");
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Upper bounds of the dispatched-batch-size histogram; an implicit
/// `+Inf` bucket follows. Powers of two up to the practical `--max-batch`
/// range.
pub const BATCH_SIZE_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A fixed-bucket histogram over micro-batch sizes (how many requests
/// the dispatch plane managed to coalesce per engine call).
pub struct BatchHistogram {
    buckets: [AtomicU64; BATCH_SIZE_BUCKETS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl BatchHistogram {
    pub fn new() -> Self {
        BatchHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one dispatched batch of `size` requests.
    pub fn observe(&self, size: usize) {
        let size = size as u64;
        let idx = BATCH_SIZE_BUCKETS
            .iter()
            .position(|&le| size <= le)
            .unwrap_or(BATCH_SIZE_BUCKETS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(size, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Batches observed so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Requests observed across all batches.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, le) in BATCH_SIZE_BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        cumulative += self.buckets[BATCH_SIZE_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

impl Default for BatchHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The server's own counters (the engine keeps its own in
/// [`srt_core::routing::EngineStats`]).
pub struct ServeMetrics {
    /// Connections admitted to the worker queue.
    pub accepted_total: AtomicU64,
    /// Connections refused with `503` because the queue was full or the
    /// server was draining.
    pub shed_total: AtomicU64,
    /// HTTP requests answered (a keep-alive connection can contribute
    /// many). Bumped together with the latency histogram under
    /// `coherence` — see [`ServeMetrics::record_request`].
    pub requests_total: AtomicU64,
    /// Responses by class.
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    /// Requests currently being handled by a worker (gauge).
    pub in_flight: AtomicU64,
    /// End-to-end handler latency (parse-complete to response-written).
    pub latency: LatencyHistogram,
    /// Requests admitted to the dispatch queue and not yet answered
    /// (gauge; batched mode only — the legacy path has no dispatch
    /// queue).
    pub inflight_requests: AtomicU64,
    /// Requests that arrived pipelined: parsed off a connection that
    /// already had an unanswered request in flight.
    pub pipelined_total: AtomicU64,
    /// Sizes of the micro-batches the dispatch plane coalesced.
    pub batch_size: BatchHistogram,
    /// Brackets `record_request` against the page render so a scrape
    /// never sees `requests_total` and the histogram disagree.
    coherence: SeqLock,
}

impl ServeMetrics {
    pub fn new() -> Self {
        ServeMetrics {
            accepted_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            inflight_requests: AtomicU64::new(0),
            pipelined_total: AtomicU64::new(0),
            batch_size: BatchHistogram::new(),
            coherence: SeqLock::new(),
        }
    }

    /// Buckets a finished response into its class counter.
    pub fn record_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one answered request: the request counter, the latency
    /// histogram and the response-class counter move together inside
    /// one claimed seqlock write, so a concurrent scrape (whose render
    /// is a seqlock read) observes either none of them or all of them.
    pub fn record_request(&self, status: u16, elapsed: Duration) {
        self.coherence.write(|| {
            self.requests_total.fetch_add(1, Ordering::Relaxed);
            self.latency.observe(elapsed);
            self.record_response(status);
        });
    }

    /// Renders the full `/metrics` page: server families first, then the
    /// engine snapshot taken by the caller at scrape time. Runs as a
    /// seqlock read against [`ServeMetrics::record_request`], so the
    /// page is retried (rebuilt) if a request completed mid-render —
    /// the count/histogram pair is always coherent.
    pub fn render_prometheus(&self, engine: &StatsSnapshot, queue_depth: usize) -> String {
        self.coherence.read(|| self.render_page(engine, queue_depth))
    }

    fn render_page(&self, engine: &StatsSnapshot, queue_depth: usize) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);

        counter(
            &mut out,
            "srt_serve_accepted_total",
            "Connections admitted to the worker queue.",
            load(&self.accepted_total),
        );
        counter(
            &mut out,
            "srt_serve_shed_total",
            "Connections refused with 503 at admission (queue full or draining).",
            load(&self.shed_total),
        );
        counter(
            &mut out,
            "srt_serve_requests_total",
            "HTTP requests answered (moves with the latency histogram).",
            load(&self.requests_total),
        );
        counter(
            &mut out,
            "srt_serve_pipelined_total",
            "Requests that arrived pipelined behind an unanswered request on the same connection.",
            load(&self.pipelined_total),
        );
        counter(
            &mut out,
            "srt_serve_responses_total_2xx",
            "Responses with a 2xx status.",
            load(&self.responses_2xx),
        );
        counter(
            &mut out,
            "srt_serve_responses_total_4xx",
            "Responses with a 4xx status.",
            load(&self.responses_4xx),
        );
        counter(
            &mut out,
            "srt_serve_responses_total_5xx",
            "Responses with a 5xx status.",
            load(&self.responses_5xx),
        );
        gauge(
            &mut out,
            "srt_serve_in_flight",
            "Requests currently being handled by a worker.",
            load(&self.in_flight),
        );
        gauge(
            &mut out,
            "srt_serve_inflight_requests",
            "Requests admitted to the dispatch queue and not yet answered.",
            load(&self.inflight_requests),
        );
        gauge(
            &mut out,
            "srt_serve_queue_depth",
            "Connections waiting in the admission queue.",
            queue_depth as u64,
        );
        let _ = writeln!(
            out,
            "# HELP srt_serve_request_seconds Handler latency from parse-complete to response-written."
        );
        self.latency.render("srt_serve_request_seconds", &mut out);
        let _ = writeln!(
            out,
            "# HELP srt_serve_batch_size Requests coalesced per dispatched micro-batch."
        );
        self.batch_size.render("srt_serve_batch_size", &mut out);

        counter(
            &mut out,
            "srt_engine_queries_total",
            "Valid queries routed by the engine.",
            engine.queries,
        );
        counter(
            &mut out,
            "srt_engine_batches_total",
            "route_batch invocations.",
            engine.batches,
        );
        counter(
            &mut out,
            "srt_engine_bounds_cache_hits_total",
            "Queries served from the per-target bounds cache.",
            engine.bounds_cache_hits,
        );
        counter(
            &mut out,
            "srt_engine_bounds_cache_misses_total",
            "Queries that had to compute fresh bounds.",
            engine.bounds_cache_misses,
        );
        counter(
            &mut out,
            "srt_engine_bounds_evictions_total",
            "Cached bounds evicted by the LRU policy.",
            engine.bounds_evictions,
        );
        counter(
            &mut out,
            "srt_engine_labels_created_total",
            "Search labels created across all queries.",
            engine.labels_created,
        );
        counter(
            &mut out,
            "srt_engine_labels_expanded_total",
            "Search labels expanded across all queries.",
            engine.labels_expanded,
        );
        counter(
            &mut out,
            "srt_engine_incomplete_total",
            "Searches cut short by a deadline or the label cap.",
            engine.incomplete,
        );
        counter(
            &mut out,
            "srt_engine_pool_reuse_total",
            "Histogram-buffer checkouts served from the free list.",
            engine.pool_reuse,
        );
        counter(
            &mut out,
            "srt_engine_pool_misses_total",
            "Histogram-buffer checkouts that allocated fresh.",
            engine.pool_misses,
        );
        counter(
            &mut out,
            "srt_engine_lattice_fast_path_total",
            "Convolutions that ran on the shared-lattice fast route.",
            engine.lattice_fast_path,
        );
        counter(
            &mut out,
            "srt_engine_panics_total",
            "Queries whose search panicked and was contained (any non-zero value is a bug report).",
            engine.panics,
        );
        gauge(
            &mut out,
            "srt_engine_epoch",
            "Id of the model epoch currently serving (bumped by each successful /reload).",
            engine.epoch,
        );
        out
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.observe(Duration::from_micros(80)); // -> le=0.0001
        }
        for _ in 0..10 {
            h.observe(Duration::from_millis(20)); // -> le=0.025
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 0.0001);
        assert_eq!(h.quantile(0.99), 0.025);
        // Beyond the last bound lands in +Inf.
        h.observe(Duration::from_secs(10));
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn batch_histogram_buckets_by_size() {
        let h = BatchHistogram::new();
        h.observe(1);
        h.observe(3);
        h.observe(200);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 204);
        let mut page = String::new();
        h.render("srt_serve_batch_size", &mut page);
        for needle in [
            "srt_serve_batch_size_bucket{le=\"1\"} 1",
            "srt_serve_batch_size_bucket{le=\"4\"} 2",
            "srt_serve_batch_size_bucket{le=\"64\"} 2",
            "srt_serve_batch_size_bucket{le=\"+Inf\"} 3",
            "srt_serve_batch_size_sum 204",
            "srt_serve_batch_size_count 3",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
    }

    /// The regression the committed BENCH_serve.json exposed: scrapes
    /// racing traffic once caught `requests_total` and the histogram
    /// count one apart. Hammer both sides and assert every scrape sees
    /// them equal.
    #[test]
    fn scrapes_never_observe_count_and_histogram_apart() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let metrics = Arc::new(ServeMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let metrics = Arc::clone(&metrics);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        metrics.record_request(200, Duration::from_micros(100 + n % 500));
                        n += 1;
                    }
                    n
                })
            })
            .collect();

        let sample = |page: &str, name: &str| -> u64 {
            page.lines()
                .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("no sample {name} in:\n{page}"))
        };
        for _ in 0..500 {
            let page = metrics.render_prometheus(&StatsSnapshot::default(), 0);
            let count = sample(&page, "srt_serve_requests_total");
            let hist = sample(&page, "srt_serve_request_seconds_count");
            assert_eq!(
                count, hist,
                "scrape observed requests_total and the histogram apart"
            );
        }
        stop.store(true, Ordering::Relaxed);
        let recorded: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(recorded > 0, "writers made progress");
        let page = metrics.render_prometheus(&StatsSnapshot::default(), 0);
        assert_eq!(sample(&page, "srt_serve_requests_total"), recorded);
        assert_eq!(sample(&page, "srt_serve_request_seconds_count"), recorded);
    }

    #[test]
    fn render_is_valid_prometheus_text() {
        let m = ServeMetrics::new();
        m.accepted_total.fetch_add(3, Ordering::Relaxed);
        m.shed_total.fetch_add(1, Ordering::Relaxed);
        m.record_response(200);
        m.record_response(422);
        m.latency.observe(Duration::from_micros(300));
        let page = m.render_prometheus(&StatsSnapshot::default(), 2);
        for needle in [
            "srt_serve_accepted_total 3",
            "srt_serve_shed_total 1",
            "srt_serve_responses_total_2xx 1",
            "srt_serve_responses_total_4xx 1",
            "srt_serve_queue_depth 2",
            "srt_serve_request_seconds_bucket{le=\"+Inf\"} 1",
            "srt_serve_request_seconds_count 1",
            "srt_engine_queries_total 0",
            "srt_engine_panics_total 0",
            "srt_engine_epoch 0",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
        }
    }
}
