//! The server proper: one acceptor thread, a bounded admission queue,
//! and a fixed pool of worker threads over blocking `std::net` sockets.
//!
//! The control flow is the whole design:
//!
//! 1. The acceptor takes connections off `TcpListener::accept` and
//!    offers each to the [`BoundedQueue`]. A full (or draining) queue
//!    hands the connection back and the acceptor **sheds** it — an
//!    immediate `503` and a close — so overload degrades into fast
//!    refusals instead of an unbounded backlog smearing tail latency
//!    over every queued request.
//! 2. Each worker blocks in [`BoundedQueue::pop`], then serves its
//!    connection's keep-alive session to completion: parse, dispatch
//!    through [`crate::handlers::handle_request`], respond, repeat.
//! 3. [`Server::shutdown`] drains: the flag flips, the acceptor is
//!    woken by a self-connect and exits, the queue closes (admitting
//!    nothing, surrendering everything already queued), and workers
//!    finish every admitted connection before joining. Admitted work is
//!    never dropped.

use crate::http::{read_request, write_response, RequestError, Response};
use crate::json::protocol_error_body;
use crate::metrics::ServeMetrics;
use crate::queue::BoundedQueue;
use srt_core::routing::RoutingEngine;
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Serving knobs. The defaults suit the integration tests and the tiny
/// fixture worlds; a real deployment sizes `workers` to cores and
/// `queue_capacity` to its latency budget (each queued connection waits
/// a full service time — the cap **is** the tail-latency contract).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (`0` = available parallelism, capped at 8).
    pub workers: usize,
    /// Admission-queue capacity; connection number `capacity + workers + 1`
    /// is the first to be shed.
    pub queue_capacity: usize,
    /// Per-read socket timeout while a connection's *first* request is
    /// awaited (and for every body/write deadline). A connection that
    /// stays silent this long is closed.
    pub read_timeout: Option<Duration>,
    /// Read deadline for *parked* keep-alive connections — applied after
    /// the first response is written. A served connection holds a worker
    /// while it waits for its next request; without this deadline a
    /// client that simply stops sending (but keeps the socket open) pins
    /// that worker forever, and `workers` parked clients brown out the
    /// whole pool. Kept separate from `read_timeout` because the right
    /// values differ: generous for a first request still in flight,
    /// tight for a connection that has already been served once and is
    /// merely idle. `None` disables reaping (trusted peers only).
    pub idle_timeout: Option<Duration>,
    /// Filesystem path `POST /reload` re-reads for a new model snapshot.
    /// Fixed at server start (never client-supplied — a reload endpoint
    /// accepting paths or bytes from the wire would be an
    /// arbitrary-model-injection hole). `None` disables `/reload` (409).
    pub model_path: Option<std::path::PathBuf>,
    /// Requests coalesced per engine call. `1` (the default) selects the
    /// legacy connection-granular path above; any larger value selects
    /// the continuous-batching planes in [`crate::batched`]: a
    /// nonblocking readiness loop, a request-granular dispatch queue of
    /// `queue_capacity` requests, and a persistent
    /// [`srt_core::routing::BatchExecutor`] with `workers` lanes.
    pub max_batch: usize,
    /// How long the batcher waits to top up a partial micro-batch
    /// (batched mode only). Zero — the default — is natural continuous
    /// batching: serve whatever has queued, immediately; uncontended
    /// latency never pays an artificial wait.
    pub batch_window: Duration,
    /// Cap on concurrently registered connections in batched mode
    /// (beyond it, new connections are refused with a best-effort `503`
    /// and a close). The legacy path bounds connections by
    /// `queue_capacity + workers` instead.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            read_timeout: Some(Duration::from_secs(5)),
            idle_timeout: Some(Duration::from_secs(2)),
            model_path: None,
            max_batch: 1,
            batch_window: Duration::ZERO,
            max_connections: 4096,
        }
    }
}

impl ServerConfig {
    pub(crate) fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8)
        }
    }
}

/// What the graceful drain observed; returned by [`Server::shutdown`].
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// Connections fully served across the server's lifetime.
    pub connections_served: u64,
    /// Connections refused with `503` across the lifetime.
    pub connections_shed: u64,
    /// Requests still being handled when the drain finished — zero by
    /// construction (workers join only after finishing their work);
    /// reported so callers can assert it.
    pub in_flight_after_drain: u64,
}

/// A running HTTP front-end over one shared [`RoutingEngine`]. With
/// [`ServerConfig::max_batch`] `> 1` the threaded acceptor/worker
/// machinery below is replaced wholesale by the continuous-batching
/// planes in [`crate::batched`]; the public surface (and the wire
/// bytes) are identical either way.
pub struct Server {
    engine: Arc<RoutingEngine>,
    metrics: Arc<ServeMetrics>,
    queue: Arc<BoundedQueue<TcpStream>>,
    draining: Arc<AtomicBool>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<u64>>,
    batched: Option<crate::batched::BatchedState>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// serving threads. Serving begins before this returns.
    pub fn start(
        engine: Arc<RoutingEngine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let draining = Arc::new(AtomicBool::new(false));

        if config.max_batch > 1 {
            let batched = crate::batched::BatchedState::start(
                Arc::clone(&engine),
                listener,
                Arc::clone(&metrics),
                &config,
            )?;
            return Ok(Server {
                engine,
                metrics,
                queue,
                draining,
                addr,
                acceptor: None,
                workers: Vec::new(),
                batched: Some(batched),
            });
        }

        let acceptor = {
            let metrics = Arc::clone(&metrics);
            let queue = Arc::clone(&queue);
            let draining = Arc::clone(&draining);
            thread::Builder::new()
                .name("srt-serve-accept".into())
                .spawn(move || accept_loop(listener, queue, metrics, draining))?
        };

        let workers = (0..config.resolved_workers())
            .map(|i| {
                let engine = Arc::clone(&engine);
                let metrics = Arc::clone(&metrics);
                let queue = Arc::clone(&queue);
                let draining = Arc::clone(&draining);
                let read_timeout = config.read_timeout;
                let idle_timeout = config.idle_timeout;
                let model_path = config.model_path.clone();
                thread::Builder::new()
                    .name(format!("srt-serve-worker-{i}"))
                    .spawn(move || {
                        let mut served = 0u64;
                        while let Some(stream) = queue.pop() {
                            serve_connection(
                                stream,
                                &engine,
                                &metrics,
                                &queue,
                                &draining,
                                read_timeout,
                                idle_timeout,
                                model_path.as_deref(),
                            );
                            served += 1;
                        }
                        served
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Server {
            engine,
            metrics,
            queue,
            draining,
            addr,
            acceptor: Some(acceptor),
            workers,
            batched: None,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live server counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The engine being served.
    pub fn engine(&self) -> &RoutingEngine {
        &self.engine
    }

    /// Work currently queued: connections waiting for a worker (legacy
    /// path) or requests waiting for the batcher (batched mode).
    pub fn queue_depth(&self) -> usize {
        match &self.batched {
            Some(b) => b.queue_depth(),
            None => self.queue.len(),
        }
    }

    /// Graceful drain: stop accepting, finish every admitted
    /// connection, join all threads. Idempotent via `Drop` (dropping an
    /// un-shut-down server performs the same drain, minus the report).
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> DrainReport {
        if let Some(batched) = self.batched.as_mut() {
            let report = batched.shutdown();
            return DrainReport {
                connections_served: report.connections_served,
                connections_shed: self.metrics.shed_total.load(Ordering::Relaxed),
                // Batched mode tracks in-flight at request granularity;
                // the drain exits only once it reaches zero.
                in_flight_after_drain: self.metrics.inflight_requests.load(Ordering::Relaxed),
            };
        }
        self.draining.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            // The acceptor blocks in accept(); a throwaway self-connect
            // wakes it so it can observe the flag and exit.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
        // Close only after the acceptor is gone: nothing new can be
        // offered, everything already admitted is drained by workers.
        self.queue.close();
        let mut connections_served = 0u64;
        for w in self.workers.drain(..) {
            connections_served += w.join().unwrap_or(0);
        }
        DrainReport {
            connections_served,
            connections_shed: self.metrics.shed_total.load(Ordering::Relaxed),
            in_flight_after_drain: self.metrics.in_flight.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let batched_running = self.batched.as_ref().is_some_and(|b| b.is_running());
        if self.acceptor.is_some() || !self.workers.is_empty() || batched_running {
            self.shutdown_inner();
        }
    }
}

/// Cap on concurrent shed-courtesy threads; refusals past it skip the
/// polite `503` and just close (see [`shed`]).
const MAX_CONCURRENT_SHEDS: u64 = 64;

fn accept_loop(
    listener: TcpListener,
    queue: Arc<BoundedQueue<TcpStream>>,
    metrics: Arc<ServeMetrics>,
    draining: Arc<AtomicBool>,
) {
    let sheds_in_flight = Arc::new(AtomicU64::new(0));
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if draining.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failure (EMFILE under FD exhaustion
                // is the canonical overload case) must not spin the
                // acceptor at 100% CPU; back off briefly before retrying.
                thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if draining.load(Ordering::SeqCst) {
            // The shutdown self-connect (or a raced client); just drop —
            // the listener closes with this thread.
            return;
        }
        match queue.try_push(stream) {
            Ok(()) => {
                metrics.accepted_total.fetch_add(1, Ordering::Relaxed);
            }
            Err(stream) => {
                metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                metrics.record_response(503);
                // Shed off the acceptor thread: the courtesy read in
                // `shed` can stall up to its timeout on a slow peer,
                // and overload is exactly when accept must stay fast.
                // Past the thread cap the refusal degrades to a bare
                // close — still bounded, still immediate.
                let gauge = Arc::clone(&sheds_in_flight);
                if gauge.fetch_add(1, Ordering::AcqRel) < MAX_CONCURRENT_SHEDS {
                    let spawned = thread::Builder::new()
                        .name("srt-serve-shed".into())
                        .spawn(move || {
                            shed(stream);
                            gauge.fetch_sub(1, Ordering::AcqRel);
                        });
                    if let Err(_e) = spawned {
                        sheds_in_flight.fetch_sub(1, Ordering::AcqRel);
                    }
                } else {
                    gauge.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }
}

/// Refuses one connection with an immediate `503`. The pending request
/// is read best-effort first (tiny buffer, millisecond timeout): closing
/// with unread data makes the kernel RST the socket, which would destroy
/// the very response telling the client to back off.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
    // Bound the refusal write too: a shed thread must never outlive a
    // peer that refuses to read its 503.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) if n < sink.len() => break,
            Ok(_) => continue,
        }
    }
    let resp = Response::json(
        503,
        protocol_error_body(
            "overloaded",
            "admission queue full; the request was shed — retry with backoff",
        ),
    )
    .closing();
    let _ = write_response(&mut stream, &resp);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Serves one connection's keep-alive session to completion.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    engine: &RoutingEngine,
    metrics: &ServeMetrics,
    queue: &BoundedQueue<TcpStream>,
    draining: &AtomicBool,
    read_timeout: Option<Duration>,
    idle_timeout: Option<Duration>,
    model_path: Option<&std::path::Path>,
) {
    let _ = stream.set_read_timeout(read_timeout);
    // Writes get the same deadline: a peer that stops reading would
    // otherwise block write_response forever on a large body, pinning
    // this worker (and hanging shutdown's join) permanently. A timed-out
    // write falls out of write_response as Err and the connection dies.
    let _ = stream.set_write_timeout(read_timeout);
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served_one = false;
    loop {
        let req = match read_request(&mut reader) {
            Ok(req) => req,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
            Err(e) => {
                // Parse failures have a definite status; answer and close
                // (framing is unrecoverable after a bad head).
                if let Some(status) = e.status() {
                    metrics.record_response(status);
                    let resp =
                        Response::json(status, protocol_error_body("bad_request", &e.detail()))
                            .closing();
                    let _ = write_response(&mut writer, &resp);
                }
                return;
            }
        };
        metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let mut resp =
            crate::handlers::handle_request(engine, metrics, queue.len(), model_path, &req);
        if req.wants_close() || draining.load(Ordering::SeqCst) {
            resp.close = true;
        }
        let write_ok = write_response(&mut writer, &resp).is_ok();
        // One seqlock-bracketed record moves the request counter, the
        // latency histogram and the class counter together: a scrape
        // rendering concurrently (including the one this very request
        // may be serving) sees all three or none.
        metrics.record_request(resp.status, started.elapsed());
        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        if !write_ok || resp.close {
            return;
        }
        if !served_one {
            served_one = true;
            // Reap parked keep-alive connections: from the second request
            // on, the socket read deadline drops to the idle timeout. A
            // client that was served and then goes quiet times out, the
            // read surfaces as `RequestError::Io`, and this worker
            // returns to the pool instead of being pinned until the peer
            // deigns to close. (The first request keeps the generous
            // `read_timeout`: a freshly admitted connection may still be
            // composing its request — that wait is admission latency, not
            // idleness.)
            if let Some(idle) = idle_timeout {
                let _ = reader.get_ref().set_read_timeout(Some(idle));
            }
        }
    }
}
