//! A deliberately tiny blocking HTTP/1.1 client — just enough to drive
//! the server from the integration tests, the `--smoke` self-check, and
//! the closed-loop latency bench without pulling in a dependency.
//!
//! `#[doc(hidden)]`: this is test scaffolding that happens to live in
//! the library so all three consumers share one implementation; it is
//! not part of the serving API.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers (lower-cased names), body.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with a generous default timeout.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects; `timeout` bounds both the connect and every read.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads one response on the kept-alive
    /// connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        self.request_inner(method, path, body, false)
    }

    /// Like [`Client::request`], but announces `Connection: close` so
    /// the server releases its worker at write time instead of parking
    /// on this connection's EOF — what a connect-per-request driver
    /// should send.
    pub fn request_closing(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        self.request_inner(method, path, body, true)
    }

    fn request_inner(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        close: bool,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: srt-serve\r\n");
        if close {
            head.push_str("Connection: close\r\n");
        }
        if !body.is_empty() || method == "POST" || method == "PUT" {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Writes raw bytes on the connection (for malformed-input tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one response off the connection.
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a status line",
            ));
        }
        let status = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad status line: {line:?}"))
            })?;
        let mut headers = Vec::new();
        loop {
            let mut hline = String::new();
            if self.reader.read_line(&mut hline)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let trimmed = hline.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((n, v)) = trimmed.split_once(':') {
                headers.push((n.trim().to_ascii_lowercase(), v.trim().to_owned()));
            }
        }
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot convenience: connect, send, read, close.
pub fn request_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    Client::connect(addr)?.request(method, path, body)
}
