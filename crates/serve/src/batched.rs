//! The continuous-batching server: three planes over one engine.
//!
//! 1. **Connection plane** — one readiness loop over nonblocking
//!    `std::net` sockets (`set_nonblocking` plus a short-deadline scan;
//!    no epoll FFI — the workspace is `#![forbid(unsafe_code)]` with
//!    vendored-stub deps). It owns accept, request framing (including
//!    HTTP/1.1 pipelining: every complete request in a read buffer is
//!    parsed, not one per read) and response writeback. A parked
//!    keep-alive connection costs a slot in the scan, not a thread —
//!    a thousand idle sockets are a `Vec` walk, where the legacy
//!    threaded design would pin a worker each.
//! 2. **Dispatch plane** — parsed requests become [`PendingRequest`]s
//!    in the request-granular [`DispatchQueue`]; a micro-batcher thread
//!    drains up to `max_batch` of them per engine call (waiting at most
//!    `batch_window` to top up a partial batch) and submits one
//!    [`BatchExecutor`] execution — persistent lanes, work stealing,
//!    epoch pinned once per batch, bitwise-deterministic input-order
//!    results. Shedding is request-granular: a full queue costs that
//!    one request a `503` and the connection survives.
//! 3. **Response plane** — completions land in the owning connection's
//!    parked map keyed by per-connection sequence number, are assembled
//!    into the write buffer strictly in request order (the pipelining
//!    contract), and the readiness loop flushes them.
//!
//! Uncontended, the dispatch plane degenerates gracefully: when nothing
//! is queued or in flight anywhere and the request has no unanswered
//! predecessor on its own connection, the readiness loop routes it
//! inline on its own thread (still through the executor, so determinism
//! and stats hold) — a lone client pays no cross-thread handoff, which
//! is what keeps uncontended p50 at the legacy path's level. Under load
//! the inline condition is never true and batching does its work.
//!
//! Graceful drain keeps the PR 7 contract at request granularity: every
//! *admitted* request (one that entered the dispatch queue, or resolved
//! inline) is answered and flushed before the loop exits; only
//! connections owing nothing are closed summarily.

use crate::dispatch::{Completion, ConnToken, DispatchQueue, EngineWork, PendingRequest};
use crate::http::{parse_buffered, write_response, Response};
use crate::json::protocol_error_body;
use crate::metrics::ServeMetrics;
use crate::server::ServerConfig;
use srt_core::routing::{BatchExecutor, RoutingEngine};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Per-pass cap on bytes read from one connection, so a single firehose
/// peer cannot starve the rest of the scan.
const READ_QUANTUM: usize = 64 * 1024;
/// Accepts per scan pass — same fairness argument.
const ACCEPT_QUANTUM: usize = 256;
/// How long the loop keeps yielding (instead of sleeping) after the
/// last observed progress: closed-loop traffic stays hot.
const HOT_WINDOW: Duration = Duration::from_millis(1);
/// Idle sleep bounds; the loop escalates from MIN to MAX while nothing
/// happens, so a thousand parked connections cost a few wakeups per
/// couple of milliseconds, not a spinning core.
const IDLE_SLEEP_MIN: Duration = Duration::from_micros(100);
const IDLE_SLEEP_MAX: Duration = Duration::from_millis(2);
/// Write-stall fallback when the config carries no read timeout.
const DEFAULT_STALL: Duration = Duration::from_secs(5);

/// What the connection plane shares with the batcher.
struct Shared {
    queue: DispatchQueue<PendingRequest>,
    /// Finished work on its way back to connections; the readiness loop
    /// drains this every pass.
    completions: Mutex<Vec<Completion>>,
    /// Wakes the readiness loop out of its idle sleep when completions
    /// (or shutdown) arrive.
    io_wake: Condvar,
    draining: AtomicBool,
    metrics: Arc<ServeMetrics>,
}

impl Shared {
    fn push_completions(&self, mut batch: Vec<Completion>) {
        let mut parked = self
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        parked.append(&mut batch);
        drop(parked);
        self.io_wake.notify_one();
    }
}

/// Counters the readiness loop reports back through shutdown.
#[derive(Default, Clone, Copy)]
pub(crate) struct IoReport {
    pub connections_served: u64,
}

/// The running batched server: the readiness loop, the batcher thread
/// and the persistent engine lanes (dropped with the executor when the
/// batcher exits).
pub(crate) struct BatchedState {
    shared: Arc<Shared>,
    io_thread: Option<JoinHandle<IoReport>>,
    batcher: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl BatchedState {
    pub(crate) fn start(
        engine: Arc<RoutingEngine>,
        listener: TcpListener,
        metrics: Arc<ServeMetrics>,
        config: &ServerConfig,
    ) -> io::Result<BatchedState> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            queue: DispatchQueue::new(config.queue_capacity),
            completions: Mutex::new(Vec::new()),
            io_wake: Condvar::new(),
            draining: AtomicBool::new(false),
            metrics: Arc::clone(&metrics),
        });
        let executor = Arc::new(BatchExecutor::new(
            Arc::clone(&engine),
            config.resolved_workers(),
        ));

        let batcher = {
            let shared = Arc::clone(&shared);
            let executor = Arc::clone(&executor);
            let engine = Arc::clone(&engine);
            let model_path = config.model_path.clone();
            let max_batch = config.max_batch.max(1);
            let window = config.batch_window;
            thread::Builder::new()
                .name("srt-serve-batcher".into())
                .spawn(move || {
                    batcher_loop(
                        &shared,
                        &executor,
                        &engine,
                        model_path.as_deref(),
                        max_batch,
                        window,
                    )
                })?
        };

        let io_thread = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            thread::Builder::new()
                .name("srt-serve-io".into())
                .spawn(move || io_loop(listener, engine, executor, shared, config))?
        };

        Ok(BatchedState {
            shared,
            io_thread: Some(io_thread),
            batcher: Some(batcher),
            addr,
        })
    }

    pub(crate) fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    pub(crate) fn shutdown(&mut self) -> IoReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        // The loop may be in its idle sleep; both wakeups are cheap and
        // the self-connect also covers a loop blocked in nothing at all
        // (it shows up as an accept and is dropped under drain).
        self.shared.io_wake.notify_one();
        let _ = TcpStream::connect(self.addr);
        let report = self
            .io_thread
            .take()
            .and_then(|t| t.join().ok())
            .unwrap_or_default();
        // The readiness loop closed the queue when it observed the
        // drain; closing again is idempotent and covers the it-never-ran
        // case, so the batcher's exit is unconditional.
        self.shared.queue.close();
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        report
    }

    pub(crate) fn is_running(&self) -> bool {
        self.io_thread.is_some() || self.batcher.is_some()
    }
}

/// The micro-batcher: drains the dispatch queue, coalesces up to
/// `max_batch` requests per engine submission, and ships completions
/// back to the response plane. Exits once the queue is closed *and*
/// drained — and a batch already popped when shutdown lands (the
/// non-empty window) is still executed and answered, never dropped.
fn batcher_loop(
    shared: &Shared,
    executor: &BatchExecutor,
    engine: &RoutingEngine,
    model_path: Option<&std::path::Path>,
    max_batch: usize,
    window: Duration,
) {
    while let Some(mut batch) = shared.queue.pop_batch(max_batch) {
        if !window.is_zero() && batch.len() < max_batch {
            // One top-up nap: trade `window` of latency for a fuller
            // batch. The default window is zero — natural continuous
            // batching (serve what has queued, immediately) — so the
            // uncontended path never waits here.
            thread::sleep(window);
            shared.queue.try_drain_into(&mut batch, max_batch);
        }
        let completions = execute_batch(batch, executor, engine, model_path, &shared.metrics);
        shared.push_completions(completions);
    }
}

/// Executes one micro-batch: `/route` requests are coalesced into a
/// single executor submission (epoch pinned once, work stolen across
/// the persistent lanes); `/route_batch` and `/reload` items run
/// individually — their responses still flow through the same
/// completion path, so per-connection ordering holds regardless.
fn execute_batch(
    batch: Vec<PendingRequest>,
    executor: &BatchExecutor,
    engine: &RoutingEngine,
    model_path: Option<&std::path::Path>,
    metrics: &ServeMetrics,
) -> Vec<Completion> {
    metrics.batch_size.observe(batch.len());
    let mut route_slots: Vec<usize> = Vec::with_capacity(batch.len());
    let mut queries = Vec::with_capacity(batch.len());
    for (i, item) in batch.iter().enumerate() {
        if let EngineWork::Route(q) = &item.work {
            route_slots.push(i);
            queries.push(*q);
        }
    }
    let mut responses: Vec<Option<Response>> = (0..batch.len()).map(|_| None).collect();
    if !queries.is_empty() {
        let results = executor.execute(queries);
        for (slot, result) in route_slots.into_iter().zip(&results) {
            responses[slot] = Some(crate::handlers::respond_route(result));
        }
    }
    batch
        .into_iter()
        .zip(responses)
        .map(|(item, prebuilt)| {
            let mut response = match prebuilt {
                Some(r) => r,
                None => match &item.work {
                    EngineWork::Route(_) => unreachable!("routes were answered above"),
                    EngineWork::Batch {
                        queries,
                        parallelism,
                    } => crate::handlers::respond_batch(&engine.route_batch(queries, *parallelism)),
                    EngineWork::Reload => crate::handlers::reload(engine, model_path),
                },
            };
            response.close |= item.close_after;
            Completion {
                conn: item.conn,
                seq: item.seq,
                started: item.started,
                response,
            }
        })
        .collect()
}

/// Executes one work item inline (the uncontended fast path of the
/// readiness loop — same executor, same render helpers, same bytes).
fn execute_work(
    work: &EngineWork,
    executor: &BatchExecutor,
    engine: &RoutingEngine,
    model_path: Option<&std::path::Path>,
) -> Response {
    match work {
        EngineWork::Route(q) => {
            let results = executor.execute(vec![*q]);
            crate::handlers::respond_route(&results[0])
        }
        EngineWork::Batch {
            queries,
            parallelism,
        } => crate::handlers::respond_batch(&engine.route_batch(queries, *parallelism)),
        EngineWork::Reload => crate::handlers::reload(engine, model_path),
    }
}

fn overload_response(detail: &str) -> Response {
    Response::json(503, protocol_error_body("overloaded", detail))
}

/// One registered connection in the readiness loop.
struct Conn {
    stream: TcpStream,
    generation: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes at the front of `write_buf` already handed to the kernel.
    written: usize,
    /// Sequence assigned to the next parsed request.
    next_seq: u64,
    /// The response sequence the write buffer is waiting for.
    next_write_seq: u64,
    /// Out-of-order completions parked until their turn, with the
    /// request's parse timestamp for the latency histogram.
    parked: BTreeMap<u64, (Response, Instant)>,
    /// No more requests will be parsed (close requested, parse error,
    /// peer EOF, or drain).
    reads_done: bool,
    /// Close once the write buffer is flushed.
    close_after_flush: bool,
    served_any: bool,
    last_activity: Instant,
    last_write_progress: Instant,
}

impl Conn {
    /// Requests parsed but not yet assembled into the write buffer.
    fn unanswered(&self) -> u64 {
        self.next_seq - self.next_write_seq
    }
}

/// The connection slab plus the counters it reports at exit.
struct IoPlane {
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    report: IoReport,
}

impl IoPlane {
    fn active(&self) -> usize {
        self.conns.len() - self.free.len()
    }

    fn register(&mut self, stream: TcpStream) -> usize {
        let now = Instant::now();
        self.next_generation += 1;
        let conn = Conn {
            stream,
            generation: self.next_generation,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            next_seq: 0,
            next_write_seq: 0,
            parked: BTreeMap::new(),
            reads_done: false,
            close_after_flush: false,
            served_any: false,
            last_activity: now,
            last_write_progress: now,
        };
        match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            if conn.served_any {
                self.report.connections_served += 1;
            }
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.free.push(slot);
        }
    }
}

/// The readiness loop: accept, read/parse/admit, assemble, flush —
/// then yield or sleep according to how recently anything happened.
fn io_loop(
    listener: TcpListener,
    engine: Arc<RoutingEngine>,
    executor: Arc<BatchExecutor>,
    shared: Arc<Shared>,
    config: ServerConfig,
) -> IoReport {
    let metrics = &shared.metrics;
    let stall = config.read_timeout.unwrap_or(DEFAULT_STALL);
    let mut plane = IoPlane {
        conns: Vec::new(),
        free: Vec::new(),
        next_generation: 0,
        report: IoReport::default(),
    };
    let mut arrived: Vec<Completion> = Vec::new();
    let mut queue_closed = false;
    let mut last_progress = Instant::now();
    let mut idle_sleep = IDLE_SLEEP_MIN;

    loop {
        let mut progress = false;
        let draining = shared.draining.load(Ordering::SeqCst);
        if draining && !queue_closed {
            // Stop admitting; everything already admitted still drains
            // through the batcher and comes back as completions.
            shared.queue.close();
            queue_closed = true;
            for conn in plane.conns.iter_mut().flatten() {
                conn.reads_done = true;
            }
        }

        // ── Response plane: route completions to their connections. ──
        {
            let mut parked = shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::swap(&mut *parked, &mut arrived);
        }
        if !arrived.is_empty() {
            progress = true;
            for completion in arrived.drain(..) {
                metrics.inflight_requests.fetch_sub(1, Ordering::Relaxed);
                let alive = plane
                    .conns
                    .get_mut(completion.conn.slot)
                    .and_then(|c| c.as_mut())
                    .filter(|c| c.generation == completion.conn.generation);
                if let Some(conn) = alive {
                    conn.parked
                        .insert(completion.seq, (completion.response, completion.started));
                }
                // A dead connection's completion is dropped here — the
                // generation check is what stops it leaking into a
                // newcomer that reused the slot.
            }
        }

        // ── Connection plane: accept. ──
        for _ in 0..ACCEPT_QUANTUM {
            match listener.accept() {
                Ok((stream, _)) => {
                    if draining {
                        continue; // includes the shutdown self-connect
                    }
                    progress = true;
                    if plane.active() >= config.max_connections {
                        // Out of slots: connection-granular refusal is
                        // the last resort (best-effort 503, close).
                        metrics.shed_total.fetch_add(1, Ordering::Relaxed);
                        metrics.record_response(503);
                        let _ = stream.set_nonblocking(true);
                        let resp =
                            overload_response("connection limit reached; retry with backoff")
                                .closing();
                        let mut bytes = Vec::new();
                        let _ = write_response(&mut bytes, &resp);
                        let _ = (&stream).write(&bytes);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    metrics.accepted_total.fetch_add(1, Ordering::Relaxed);
                    plane.register(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break, // scan again next pass; never spin here
            }
        }

        // ── Per connection: read, parse, admit, assemble, flush. ──
        for slot in 0..plane.conns.len() {
            let mut should_close = false;
            if let Some(conn) = plane.conns[slot].as_mut() {
                let token = ConnToken {
                    slot,
                    generation: conn.generation,
                };
                let mut dead = false;

                // Read whatever the socket has, up to the quantum.
                if !conn.reads_done {
                    let mut chunk = [0u8; 4096];
                    let mut got = 0usize;
                    loop {
                        match (&conn.stream).read(&mut chunk) {
                            Ok(0) => {
                                // Peer finished sending; whatever was
                                // admitted is still answered + flushed.
                                conn.reads_done = true;
                                break;
                            }
                            Ok(n) => {
                                conn.read_buf.extend_from_slice(&chunk[..n]);
                                conn.last_activity = Instant::now();
                                got += n;
                                progress = true;
                                if got >= READ_QUANTUM {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                }

                // Parse every complete request in the buffer — this
                // loop is HTTP/1.1 pipelining.
                while !dead && !conn.reads_done {
                    match parse_buffered(&conn.read_buf) {
                        Ok(None) => break,
                        Ok(Some((req, consumed))) => {
                            conn.read_buf.drain(..consumed);
                            let started = Instant::now();
                            let seq = conn.next_seq;
                            conn.next_seq += 1;
                            if seq > conn.next_write_seq {
                                metrics.pipelined_total.fetch_add(1, Ordering::Relaxed);
                            }
                            let close_after = req.wants_close();
                            if close_after {
                                // HTTP semantics: nothing after a
                                // `Connection: close` request is read.
                                conn.reads_done = true;
                            }
                            match crate::handlers::classify_request(
                                &engine,
                                metrics,
                                shared.queue.len(),
                                &req,
                            ) {
                                Err(mut resp) => {
                                    // Cheap endpoints and protocol
                                    // errors are answered on this
                                    // thread, but in sequence order
                                    // like everything else.
                                    resp.close |= close_after;
                                    conn.parked.insert(seq, (resp, started));
                                }
                                Ok(work) => {
                                    let idle = shared.queue.is_empty()
                                        && metrics.inflight_requests.load(Ordering::Relaxed)
                                            == 0
                                        && seq == conn.next_write_seq;
                                    if idle {
                                        // Uncontended fast path:
                                        // nothing queued or in flight
                                        // anywhere, so dispatching
                                        // would only add two thread
                                        // handoffs to this request's
                                        // latency. Execute here — still
                                        // via the executor, so
                                        // determinism, stats and the
                                        // batch-size histogram hold.
                                        metrics.batch_size.observe(1);
                                        let mut resp = execute_work(
                                            &work,
                                            &executor,
                                            &engine,
                                            config.model_path.as_deref(),
                                        );
                                        resp.close |= close_after;
                                        conn.parked.insert(seq, (resp, started));
                                    } else {
                                        let pending = PendingRequest {
                                            conn: token,
                                            seq,
                                            started,
                                            close_after,
                                            work,
                                        };
                                        match shared.queue.try_push(pending) {
                                            Ok(()) => {
                                                metrics
                                                    .inflight_requests
                                                    .fetch_add(1, Ordering::Relaxed);
                                            }
                                            Err(_) => {
                                                // Request-granular shed:
                                                // this request gets the
                                                // 503; the connection
                                                // (and its pipelined
                                                // neighbours) live on.
                                                metrics
                                                    .shed_total
                                                    .fetch_add(1, Ordering::Relaxed);
                                                let mut resp = overload_response(
                                                    "dispatch queue full; the request was shed — retry with backoff",
                                                );
                                                resp.close = close_after;
                                                conn.parked.insert(seq, (resp, started));
                                            }
                                        }
                                    }
                                }
                            }
                            progress = true;
                        }
                        Err(e) => {
                            // Framing is unrecoverable after a bad
                            // head: answer (in order) and stop reading.
                            conn.reads_done = true;
                            if let Some(status) = e.status() {
                                let seq = conn.next_seq;
                                conn.next_seq += 1;
                                let resp = Response::json(
                                    status,
                                    protocol_error_body("bad_request", &e.detail()),
                                )
                                .closing();
                                conn.parked.insert(seq, (resp, Instant::now()));
                            } else {
                                dead = true;
                            }
                            progress = true;
                        }
                    }
                }

                // Assemble responses strictly in request order.
                while let Some((mut resp, started)) = conn.parked.remove(&conn.next_write_seq) {
                    conn.next_write_seq += 1;
                    if draining {
                        resp.close = true;
                    }
                    if resp.close {
                        conn.close_after_flush = true;
                        conn.reads_done = true;
                    }
                    metrics.record_request(resp.status, started.elapsed());
                    let _ = write_response(&mut conn.write_buf, &resp);
                    conn.served_any = true;
                    progress = true;
                }

                // Flush.
                if conn.write_buf.len() > conn.written {
                    loop {
                        match (&conn.stream).write(&conn.write_buf[conn.written..]) {
                            Ok(0) => {
                                dead = true;
                                break;
                            }
                            Ok(n) => {
                                conn.written += n;
                                conn.last_write_progress = Instant::now();
                                conn.last_activity = conn.last_write_progress;
                                progress = true;
                                if conn.written == conn.write_buf.len() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                dead = true;
                                break;
                            }
                        }
                    }
                    if conn.written == conn.write_buf.len() {
                        conn.write_buf.clear();
                        conn.written = 0;
                    }
                }

                // Lifecycle.
                let flushed = conn.write_buf.is_empty();
                if dead {
                    should_close = true;
                } else if (conn.close_after_flush || conn.reads_done)
                    && conn.unanswered() == 0
                    && flushed
                {
                    // Nothing more will arrive and nothing is owed.
                    should_close = true;
                } else if !flushed && conn.last_write_progress.elapsed() > stall {
                    // A peer that stops reading while we owe it bytes
                    // cannot pin a slot (or the drain) forever.
                    should_close = true;
                } else if conn.unanswered() == 0 && flushed {
                    // Stalled mid-request (partial head or body) or
                    // parked idle between requests.
                    let deadline = if !conn.read_buf.is_empty() || !conn.served_any {
                        config.read_timeout
                    } else {
                        config.idle_timeout
                    };
                    if let Some(d) = deadline {
                        if conn.last_activity.elapsed() > d {
                            should_close = true;
                        }
                    }
                }
            } else {
                continue;
            }
            if should_close {
                plane.close(slot);
            }
        }

        // ── Drain exit: every admitted request answered and flushed. ──
        if draining {
            let owing = plane
                .conns
                .iter()
                .flatten()
                .any(|c| c.unanswered() > 0 || !c.write_buf.is_empty());
            let inflight = metrics.inflight_requests.load(Ordering::Relaxed);
            if !owing && inflight == 0 && shared.queue.is_empty() {
                for slot in 0..plane.conns.len() {
                    plane.close(slot);
                }
                return plane.report;
            }
        }

        // ── Pacing. ──
        if progress {
            last_progress = Instant::now();
            idle_sleep = IDLE_SLEEP_MIN;
            continue;
        }
        if last_progress.elapsed() < HOT_WINDOW {
            // Recently busy: hand the core to the batcher and its lanes
            // instead of sleeping — closed-loop latency stays tight.
            thread::yield_now();
            continue;
        }
        let guard = shared
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (guard, _timeout) = shared
            .io_wake
            .wait_timeout(guard, idle_sleep)
            .unwrap_or_else(PoisonError::into_inner);
        drop(guard);
        idle_sleep = (idle_sleep * 2).min(IDLE_SLEEP_MAX);
    }
}
