//! Dispatch from a parsed [`Request`] to the five endpoints.
//!
//! Status mapping, fixed across the API: `400` for protocol/schema
//! garbage (unparseable JSON, missing members), `422` for well-formed
//! queries the engine rejects with a typed [`EngineError`] (unknown
//! node, negative budget, zero deadline) and for snapshots
//! `POST /reload` rejects with a typed `SwapError`, `409` for a reload
//! on a server started without a model path, `500` for a contained
//! search panic (`EngineError::Internal`) or a reload I/O failure,
//! `404`/`405` for unknown paths and methods. Load shedding (`503`)
//! never reaches this module — it is decided at admission, before a
//! worker ever parses the request.

use crate::dispatch::EngineWork;
use crate::http::{Request, Response};
use crate::json::{
    self, engine_error_to_json, protocol_error_body, query_from_json, route_result_to_json,
};
use crate::metrics::ServeMetrics;
use srt_core::routing::{EngineError, Query, RouteResult, RoutingEngine};
use std::path::Path;

/// Hard cap on `route_batch` fan-out per request: the serving layer's
/// parallelism budget belongs to the worker pool, not to any single
/// client's `parallelism` member.
pub const MAX_BATCH_PARALLELISM: usize = 8;
/// Hard cap on queries per `route_batch` request.
pub const MAX_BATCH_QUERIES: usize = 10_000;

/// Routes one parsed request to its handler, executing engine work
/// synchronously — the legacy connection-granular path. The batched
/// planes share every parse and render step through
/// [`classify_request`] and the `respond_*` helpers, so the bytes on
/// the wire are identical whichever plane served them.
pub fn handle_request(
    engine: &RoutingEngine,
    metrics: &ServeMetrics,
    queue_depth: usize,
    model_path: Option<&Path>,
    req: &Request,
) -> Response {
    match classify_request(engine, metrics, queue_depth, req) {
        Err(resp) => resp,
        Ok(EngineWork::Route(query)) => respond_route(&engine.route(&query)),
        Ok(EngineWork::Batch {
            queries,
            parallelism,
        }) => respond_batch(&engine.route_batch(&queries, parallelism)),
        Ok(EngineWork::Reload) => reload(engine, model_path),
    }
}

/// Splits a parsed request into an immediately-answerable response
/// (cheap endpoints, protocol errors — the connection plane serves
/// these inline) or validated engine-bound work for the dispatch
/// queue. All request-body parsing happens here, on the caller's
/// thread, so a malformed body costs a `400` and never a queue slot.
pub(crate) fn classify_request(
    engine: &RoutingEngine,
    metrics: &ServeMetrics,
    queue_depth: usize,
    req: &Request,
) -> Result<EngineWork, Response> {
    // Path first, then method: a known path with the wrong method (any
    // method — HEAD, DELETE, …) is a 405, never a misleading 404.
    match req.path.as_str() {
        "/healthz" if req.method == "GET" => Err(Response::json(
            200,
            format!("{{\"ok\":true,\"epoch\":{}}}", engine.epoch()),
        )),
        "/metrics" if req.method == "GET" => Err(Response::text(
            200,
            metrics.render_prometheus(&engine.stats(), queue_depth),
        )),
        "/route" if req.method == "POST" => parse_route(&req.body).map(EngineWork::Route),
        "/route_batch" if req.method == "POST" => parse_route_batch(&req.body),
        "/reload" if req.method == "POST" => Ok(EngineWork::Reload),
        "/healthz" | "/metrics" | "/route" | "/route_batch" | "/reload" => Err(Response::json(
            405,
            protocol_error_body(
                "method_not_allowed",
                &format!("{} does not accept {}", req.path, req.method),
            ),
        )),
        _ => Err(Response::json(
            404,
            protocol_error_body("not_found", &format!("no such endpoint: {}", req.path)),
        )),
    }
}

/// Renders one `/route` outcome — shared by the legacy path and the
/// batcher, so batched responses stay bitwise-identical.
pub(crate) fn respond_route(result: &Result<RouteResult, EngineError>) -> Response {
    match result {
        Ok(result) => Response::json(200, route_result_to_json(result)),
        Err(e) => Response::json(engine_error_status(e), engine_error_to_json(e)),
    }
}

/// Renders a `/route_batch` outcome: `{"results":[...]}` in input
/// order — one bad or even panicking query never fails its
/// batch-mates (the engine's containment guarantee, on the wire).
pub(crate) fn respond_batch(results: &[Result<RouteResult, EngineError>]) -> Response {
    let mut out = String::with_capacity(64 * results.len().max(1));
    out.push_str("{\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match r {
            Ok(result) => out.push_str(&route_result_to_json(result)),
            Err(e) => out.push_str(&engine_error_to_json(e)),
        }
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// `POST /reload`: re-read the server's configured snapshot path and
/// hot-swap the engine onto it. The path is fixed at server start
/// (`--model` / [`crate::server::ServerConfig::model_path`]) and the
/// request body is ignored — accepting client-supplied paths or model
/// bytes on this endpoint would be an arbitrary-model-injection hole.
///
/// Every failure leaves the old epoch serving: `409` when the server
/// has no model source at all, `500` when the file cannot be read,
/// `422` when the engine's revalidation rejects the snapshot. Success
/// answers with the freshly published epoch id.
pub(crate) fn reload(engine: &RoutingEngine, model_path: Option<&Path>) -> Response {
    let path = match model_path {
        Some(p) => p,
        None => {
            return Response::json(
                409,
                protocol_error_body(
                    "no_model_source",
                    "server was started without a model path; /reload has nothing to re-read",
                ),
            )
        }
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            return Response::json(
                500,
                protocol_error_body(
                    "reload_io",
                    &format!("reading {}: {e}", path.display()),
                ),
            )
        }
    };
    match engine.swap_model_bytes(&bytes) {
        Ok(epoch) => Response::json(200, format!("{{\"ok\":true,\"epoch\":{epoch}}}")),
        Err(e) => Response::json(
            422,
            protocol_error_body("bad_snapshot", &e.to_string()),
        ),
    }
}

/// Parses the body as JSON or produces the `400` response.
fn parse_body(body: &[u8]) -> Result<json::Json, Response> {
    let text = std::str::from_utf8(body).map_err(|_| {
        Response::json(
            400,
            protocol_error_body("bad_request", "body is not valid UTF-8"),
        )
    })?;
    json::parse(text).map_err(|e| {
        Response::json(
            400,
            protocol_error_body(
                "bad_request",
                &format!("invalid JSON at byte {}: {}", e.at, e.msg),
            ),
        )
    })
}

/// The status an engine rejection maps to: contained panics are the
/// server's fault (`500`), everything else is the query's (`422`).
fn engine_error_status(e: &EngineError) -> u16 {
    match e {
        EngineError::Internal => 500,
        _ => 422,
    }
}

fn parse_route(body: &[u8]) -> Result<Query, Response> {
    let doc = parse_body(body)?;
    query_from_json(&doc)
        .map_err(|msg| Response::json(400, protocol_error_body("bad_request", &msg)))
}

/// `POST /route_batch`: `{"queries":[...], "parallelism": n?}`.
fn parse_route_batch(body: &[u8]) -> Result<EngineWork, Response> {
    let doc = parse_body(body)?;
    let raw_queries = match doc.get("queries").and_then(|q| q.as_arr()) {
        Some(items) => items,
        None => {
            return Err(Response::json(
                400,
                protocol_error_body("bad_request", "missing array member \"queries\""),
            ))
        }
    };
    if raw_queries.len() > MAX_BATCH_QUERIES {
        return Err(Response::json(
            400,
            protocol_error_body(
                "bad_request",
                &format!("batch exceeds {MAX_BATCH_QUERIES} queries"),
            ),
        ));
    }
    let parallelism = match doc.get("parallelism") {
        None => 1,
        Some(raw) => match raw.as_u64() {
            Some(p) => (p as usize).clamp(1, MAX_BATCH_PARALLELISM),
            None => {
                return Err(Response::json(
                    400,
                    protocol_error_body(
                        "bad_request",
                        "\"parallelism\" must be an unsigned integer",
                    ),
                ))
            }
        },
    };
    let mut queries: Vec<Query> = Vec::with_capacity(raw_queries.len());
    for (i, raw) in raw_queries.iter().enumerate() {
        match query_from_json(raw) {
            Ok(q) => queries.push(q),
            Err(msg) => {
                return Err(Response::json(
                    400,
                    protocol_error_body("bad_request", &format!("queries[{i}]: {msg}")),
                ))
            }
        }
    }
    Ok(EngineWork::Batch {
        queries,
        parallelism,
    })
}
