//! `srt-serve` — the HTTP front-end over a shared
//! [`RoutingEngine`](srt_core::routing::RoutingEngine).
//!
//! A hand-rolled HTTP/1.1 server on `std::net` blocking sockets: one
//! acceptor thread, a **bounded** admission queue, and a fixed worker
//! pool. No async runtime, no external dependencies — consistent with
//! the workspace's offline vendoring policy — and none needed for a
//! four-endpoint API whose work unit is a CPU-bound search.
//!
//! # Endpoints
//!
//! | Method | Path           | Purpose                                             |
//! |--------|----------------|-----------------------------------------------------|
//! | `POST` | `/route`       | Route one query; body `{"source","target","budget_s"[,"deadline_ms"]}` |
//! | `POST` | `/route_batch` | Route many; body `{"queries":[…][,"parallelism"]}`   |
//! | `POST` | `/reload`      | Hot-swap: re-read [`ServerConfig::model_path`] and publish a new engine epoch (`409` without a path, `422` bad snapshot, body ignored) |
//! | `GET`  | `/metrics`     | Prometheus text: `srt_serve_*` + `srt_engine_*` (incl. `srt_engine_epoch`) |
//! | `GET`  | `/healthz`     | Liveness: `200 {"ok":true,"epoch":N}`                |
//!
//! # The admission contract
//!
//! Every accepted connection is offered to a queue of fixed capacity
//! ([`ServerConfig::queue_capacity`]). If the queue has room, the
//! connection **will** be served — graceful shutdown drains every
//! admitted connection before the workers exit, dropping nothing. If
//! the queue is full, the connection is refused *immediately* with
//! `503` (and `srt_serve_shed_total` increments): under overload the
//! server converts excess load into fast, explicit refusals instead of
//! an unbounded backlog that smears queueing delay across every
//! in-flight request. Capacity bounds worst-case wait to roughly
//! `queue_capacity / workers` service times — the knob *is* the
//! tail-latency contract.
//!
//! Responses from `POST /route` are bitwise-identical to calling
//! [`RoutingEngine::route`](srt_core::routing::RoutingEngine::route)
//! in-process: floats travel in shortest round-trip formatting, pinned
//! by the integration suite. Status mapping: `400` malformed
//! JSON/schema, `422` typed engine rejections
//! ([`EngineError`](srt_core::routing::EngineError) rendered as
//! `{"error":{"kind",…}}`), `500` contained search panics, `503` shed.

#![forbid(unsafe_code)]

pub mod batched;
pub mod client;
pub mod dispatch;
pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod server;

pub use dispatch::DispatchQueue;
pub use metrics::{
    BatchHistogram, LatencyHistogram, ServeMetrics, BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_S,
};
pub use queue::BoundedQueue;
pub use server::{DrainReport, Server, ServerConfig};
