//! Minimal HTTP/1.1 framing over blocking streams — exactly what the
//! four endpoints need, nothing else.
//!
//! Supported: request-line + header parsing with hard size caps,
//! `Content-Length` bodies, keep-alive (HTTP/1.1 default) and
//! `Connection: close`. Deliberately unsupported (answered with a clean
//! error, never undefined behaviour): chunked transfer encoding (`501`),
//! bodies without a length (`411`), oversized headers or bodies (`431`
//! / `413`). The parser trusts nothing: every limit is enforced while
//! reading, so a hostile peer cannot make a worker allocate unboundedly.

use std::io::{self, BufRead, Read, Write};

/// Cap on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body (`413` beyond it).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (no query-string splitting; the API uses
    /// fixed paths).
    pub path: String,
    /// `true` for HTTP/1.1 (keep-alive by default), `false` for 1.0.
    pub http11: bool,
    /// Header `(name, value)` pairs; names lower-cased during parsing.
    pub headers: Vec<(String, String)>,
    /// The body, already length-checked.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
            || !self.http11
    }
}

/// Why a request could not be parsed. Everything except `Closed`/`Io`
/// maps to a definite status code via [`RequestError::status`].
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly before sending a request
    /// (the normal end of a keep-alive session).
    Closed,
    /// Transport error (includes read timeouts on idle connections).
    Io(io::Error),
    /// Syntactically broken request head.
    Malformed(&'static str),
    /// Head grew past [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Body declared larger than [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// A body-carrying method without `Content-Length`.
    LengthRequired,
    /// `Transfer-Encoding` (chunked et al.) is not implemented.
    UnsupportedTransferEncoding,
}

impl RequestError {
    /// The status code to answer with (`None`: nothing to say — the
    /// connection just ends).
    pub fn status(&self) -> Option<u16> {
        match self {
            RequestError::Closed | RequestError::Io(_) => None,
            RequestError::Malformed(_) => Some(400),
            RequestError::HeadTooLarge => Some(431),
            RequestError::BodyTooLarge => Some(413),
            RequestError::LengthRequired => Some(411),
            RequestError::UnsupportedTransferEncoding => Some(501),
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            RequestError::Closed => "connection closed".into(),
            RequestError::Io(e) => format!("transport error: {e}"),
            RequestError::Malformed(what) => format!("malformed request: {what}"),
            RequestError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            RequestError::BodyTooLarge => {
                format!("request body exceeds {MAX_BODY_BYTES} bytes")
            }
            RequestError::LengthRequired => "Content-Length required".into(),
            RequestError::UnsupportedTransferEncoding => {
                "transfer encodings are not supported; send Content-Length".into()
            }
        }
    }
}

/// Reads one CRLF-terminated line, charging its size against `budget`.
fn read_line<R: BufRead>(r: &mut R, budget: &mut usize) -> Result<String, RequestError> {
    let mut raw = Vec::new();
    // Cap the read itself: `take` stops a single endless unterminated
    // line from blowing past the head budget before the check below.
    // UFCS pins `Self = &mut R` so the reader is borrowed, not moved.
    let n = Read::take(&mut *r, *budget as u64 + 2)
        .read_until(b'\n', &mut raw)
        .map_err(RequestError::Io)?;
    if n == 0 {
        return Err(RequestError::Closed);
    }
    if !raw.ends_with(b"\n") {
        return Err(if n > *budget {
            RequestError::HeadTooLarge
        } else {
            RequestError::Malformed("unterminated line")
        });
    }
    raw.pop();
    if raw.ends_with(b"\r") {
        raw.pop();
    }
    *budget = budget.saturating_sub(n);
    String::from_utf8(raw).map_err(|_| RequestError::Malformed("non-UTF-8 request head"))
}

/// Reads and validates one request from the stream.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, RequestError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(r, &mut budget)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(RequestError::Malformed("empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .filter(|p| !p.is_empty())
        .ok_or(RequestError::Malformed("missing request target"))?
        .to_owned();
    let http11 = match parts.next() {
        Some("HTTP/1.1") => true,
        Some("HTTP/1.0") => false,
        _ => return Err(RequestError::Malformed("unsupported HTTP version")),
    };
    if parts.next().is_some() {
        return Err(RequestError::Malformed("extra tokens in request line"));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, &mut budget) {
            Ok(l) => l,
            // EOF mid-head is malformed, not a clean close.
            Err(RequestError::Closed) => {
                return Err(RequestError::Malformed("connection closed mid-request"))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header without ':'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut req = Request {
        method,
        path,
        http11,
        headers,
        body: Vec::new(),
    };

    if req.header("transfer-encoding").is_some() {
        return Err(RequestError::UnsupportedTransferEncoding);
    }
    // Multiple Content-Length headers are a request-smuggling desync
    // vector behind proxies that resolve the conflict differently
    // (RFC 7230 §3.3.2): refuse them outright rather than pick one.
    if req
        .headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .count()
        > 1
    {
        return Err(RequestError::Malformed("multiple Content-Length headers"));
    }
    let content_length = match req.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed("unparseable Content-Length"))?,
        None => {
            if req.method == "POST" || req.method == "PUT" {
                return Err(RequestError::LengthRequired);
            }
            0
        }
    };
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge);
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        r.read_exact(&mut body).map_err(RequestError::Io)?;
        req.body = body;
    }
    Ok(req)
}

/// Index just past the head-terminating blank line, if the buffer holds
/// a complete request head. Lines end at `\n` with an optional `\r`
/// before it — the same framing [`read_line`] accepts.
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        let j = i + buf[i..].iter().position(|&b| b == b'\n')?;
        let line = &buf[i..j];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            return Some(j + 1);
        }
        i = j + 1;
    }
    None
}

/// Incremental parse for the nonblocking connection plane: attempts to
/// parse one complete request from the front of `buf`.
///
/// * `Ok(Some((req, consumed)))` — a full request was parsed from
///   `buf[..consumed]`; the caller drains those bytes and calls again,
///   which is what makes HTTP/1.1 pipelining work (every complete
///   request already in the buffer is parsed, not one per read),
/// * `Ok(None)` — the buffer holds only a prefix (head unterminated, or
///   a declared body still arriving); read more and retry,
/// * `Err(_)` — the prefix can never become a valid request; same
///   status mapping as [`read_request`], and the connection is done.
///
/// Validation is byte-for-byte [`read_request`] — this wrapper only
/// adds the completeness check a non-blocking reader needs.
pub fn parse_buffered(buf: &[u8]) -> Result<Option<(Request, usize)>, RequestError> {
    if head_end(buf).is_none() {
        // `>=`: a head that has already filled the whole budget without
        // terminating can never become valid by growing further.
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(RequestError::HeadTooLarge);
        }
        return Ok(None);
    }
    let mut slice = buf;
    match read_request(&mut slice) {
        Ok(req) => Ok(Some((req, buf.len() - slice.len()))),
        // The head is complete, so EOF can only mean the declared body
        // has not fully arrived yet (the length cap was already
        // enforced before any body byte was read).
        Err(RequestError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e),
    }
}

/// One response, framed with `Content-Length` (never chunked).
#[derive(Debug)]
pub struct Response {
    /// Status code (see [`reason`] for the phrase).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Ask the peer to close after this response (`Connection: close`).
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// Marks the response as connection-terminating.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `resp` onto the stream (flushes before returning).
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if resp.close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /route HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.body, b"abcd");
        assert!(req.wants_close());
    }

    #[test]
    fn rejects_gibberish_with_400() {
        for raw in ["NOT A REQUEST\r\n\r\n", "GET\r\n\r\n", "GET / HTTP/2\r\n\r\n"] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), Some(400), "{raw:?} -> {err:?}");
        }
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Even agreeing duplicates are refused — a proxy in front may
        // resolve the pair differently than we do (smuggling desync).
        for raw in [
            "POST /route HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nabcd",
            "POST /route HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), Some(400), "{raw:?} -> {err:?}");
        }
    }

    #[test]
    fn post_without_length_is_411_and_chunked_is_501() {
        assert_eq!(
            parse("POST /route HTTP/1.1\r\n\r\n").unwrap_err().status(),
            Some(411)
        );
        assert_eq!(
            parse("POST /route HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(501)
        );
    }

    #[test]
    fn oversized_declarations_are_bounded() {
        let huge_body = format!("POST /route HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert_eq!(parse(&huge_body).unwrap_err().status(), Some(413));
        let huge_head = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert_eq!(parse(&huge_head).unwrap_err().status(), Some(431));
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse("").unwrap_err(), RequestError::Closed));
    }

    #[test]
    fn parse_buffered_handles_partials_pipelines_and_garbage() {
        // A bare prefix parses to "not yet".
        let full = b"POST /route HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        for cut in [0, 5, 21, 44, full.len() - 1] {
            assert!(
                parse_buffered(&full[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes is incomplete"
            );
        }
        let (req, consumed) = parse_buffered(full).unwrap().unwrap();
        assert_eq!(consumed, full.len());
        assert_eq!(req.body, b"abcd");

        // Two pipelined requests: the first parse consumes exactly the
        // first request, the remainder parses to the second.
        let mut piped = full.to_vec();
        piped.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        let (first, consumed) = parse_buffered(&piped).unwrap().unwrap();
        assert_eq!(first.path, "/route");
        assert_eq!(consumed, full.len());
        let (second, rest) = parse_buffered(&piped[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert_eq!(rest, piped.len() - consumed);

        // Same validation as the blocking reader.
        assert_eq!(
            parse_buffered(b"NOT A REQUEST\r\n\r\n").unwrap_err().status(),
            Some(400)
        );
        assert_eq!(
            parse_buffered(b"POST /route HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(411)
        );
        // An unterminated head that already filled the budget can never
        // become valid.
        let endless = vec![b'a'; MAX_HEAD_BYTES];
        assert_eq!(parse_buffered(&endless).unwrap_err().status(), Some(431));
    }

    #[test]
    fn response_roundtrips_with_length_framing() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"x\":1}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"));
    }
}
