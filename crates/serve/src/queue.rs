//! The bounded MPMC admission queue behind the server's load shedding.
//!
//! One producer (the acceptor thread) pushes accepted connections with
//! [`BoundedQueue::try_push`]; the worker threads block in
//! [`BoundedQueue::pop`]. The queue never blocks the producer: when it
//! is full, `try_push` hands the connection straight back so the caller
//! can shed it (an immediate `503`) instead of letting an unbounded
//! backlog smear tail latency across every queued request — the
//! admission contract the whole serving layer is built on.
//!
//! Shutdown is a first-class state: [`BoundedQueue::close`] stops
//! admitting new items but lets consumers drain everything already
//! queued — `pop` returns `None` only once the queue is both closed
//! *and* empty, which is what makes the server's graceful drain
//! lossless.
//!
//! The close-then-drain machine is written against
//! `srt_core::sync::sys` (plain `std::sync` in normal builds), so the
//! `srt-check` queue model proves losslessness under every interleaving
//! at the preemption bound.

use srt_core::sync::sys::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::PoisonError;

/// A fixed-capacity multi-producer/multi-consumer queue with
/// non-blocking admission and blocking, drain-to-empty consumption.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Poison-tolerant lock: a consumer panicking mid-`pop` must not
    /// wedge admission for the rest of the server's life.
    fn state(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to enqueue without blocking. Returns the item back when
    /// the queue is full (shed it) or closed (draining — shed it too).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state();
        if s.closed || s.items.len() >= self.capacity {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` is the consumer's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self
                .ready
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admission and wakes every blocked consumer. Already-queued
    /// items remain poppable — close starts the drain, it does not drop
    /// work.
    pub fn close(&self) {
        self.state().closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting (the metrics `queue_depth` gauge).
    pub fn len(&self) -> usize {
        self.state().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_roundtrip_in_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3), "admission past capacity");
        // Popping frees a slot again.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"), "closed queue admits nothing");
        // Everything queued before close is still served.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut seen = 0usize;
                    while q.pop().is_some() {
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        for i in 0..16 {
            // Producers spin on shed in this test; the server never does.
            let mut item = i;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        thread::yield_now();
                    }
                }
            }
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 16, "every admitted item is consumed exactly once");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(2));
    }
}
