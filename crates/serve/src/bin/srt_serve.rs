//! `srt-serve` — serve a routing engine over HTTP, or prove the serving
//! stack end-to-end with `--smoke`.
//!
//! ```text
//! srt_serve [--addr HOST:PORT] [--workers N] [--queue N] [--model PATH]
//!           [--max-batch N] [--batch-window MICROS] [--smoke]
//! ```
//!
//! Without `--smoke`, trains the tiny synthetic fixture world, starts
//! the server, and serves until the process is killed; `--model PATH`
//! names the snapshot file `POST /reload` re-reads for zero-downtime
//! hot swaps (without it `/reload` answers `409`). `--max-batch`
//! selects the serving machinery: `1` is the legacy thread-per-worker
//! connection path, anything larger (the binary's default is 8) runs
//! the continuous-batching planes — nonblocking connection loop,
//! request-granular dispatch, micro-batched engine calls.
//! `--batch-window` (microseconds, default 0) lets the batcher wait to
//! top up a partial batch, trading a bounded slice of latency for
//! larger batches. With `--smoke`,
//! binds an ephemeral port and runs the CI smoke sequence: liveness
//! probe, bitwise `/route` parity against the in-process engine, a
//! closed-loop `/route_batch`, `/metrics` counter checks, a hot-swap
//! round (reload → epoch bump → parity, corrupt snapshot → `422` with
//! the old epoch still serving), and a graceful drain — exiting
//! non-zero on the first violation.

#![forbid(unsafe_code)]

use srt_core::model::io as model_io;
use srt_core::model::training::{train_hybrid, TrainingConfig};
use srt_core::routing::{EngineBuilder, Query, RoutingEngine};
use srt_core::{CombinePolicy, HybridCost, HybridModel};
use srt_ml::forest::ForestConfig;
use srt_serve::client::{request_once, Client};
use srt_serve::{json, Server, ServerConfig};
use srt_synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    model: Option<PathBuf>,
    max_batch: usize,
    batch_window_us: u64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        workers: 0,
        queue: 64,
        model: None,
        max_batch: 8,
        batch_window_us: 0,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--model" => args.model = Some(PathBuf::from(value("--model")?)),
            "--max-batch" => {
                args.max_batch = value("--max-batch")?
                    .parse::<usize>()
                    .map_err(|e| format!("--max-batch: {e}"))?
                    .max(1)
            }
            "--batch-window" => {
                args.batch_window_us = value("--batch-window")?
                    .parse()
                    .map_err(|e| format!("--batch-window: {e}"))?
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: srt_serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--model PATH] [--max-batch N] [--batch-window MICROS] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Trains the tiny fixture world and builds an engine over it — the
/// same fixture the parity tests use, so the smoke run exercises a real
/// trained model, not a mock.
fn fixture_engine() -> (RoutingEngine, SyntheticWorld, HybridModel) {
    let world = SyntheticWorld::build(WorldConfig::tiny());
    let cfg = TrainingConfig {
        train_pairs: 120,
        test_pairs: 40,
        min_obs: 5,
        bins: 10,
        forest: ForestConfig {
            n_trees: 6,
            ..ForestConfig::default()
        },
        ..TrainingConfig::default()
    };
    let (model, _) = train_hybrid(&world, &cfg).expect("fixture world trains");
    let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
    (EngineBuilder::new(cost).build(), world, model)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("srt_serve: {e}");
            return ExitCode::from(2);
        }
    };

    eprintln!("srt_serve: training fixture world (tiny)...");
    let (engine, world, model) = fixture_engine();
    let engine = Arc::new(engine);

    let config = ServerConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        model_path: args.model.clone(),
        max_batch: args.max_batch,
        batch_window: std::time::Duration::from_micros(args.batch_window_us),
        ..ServerConfig::default()
    };

    if args.smoke {
        eprintln!(
            "srt_serve --smoke: {} mode (max_batch {})",
            if args.max_batch > 1 { "batched" } else { "legacy" },
            args.max_batch
        );
        return match smoke(engine, world, model, config) {
            Ok(()) => {
                println!("srt_serve --smoke: all checks passed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("srt_serve --smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let server = match Server::start(engine, args.addr.as_str(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("srt_serve: bind {} failed: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("srt_serve: listening on http://{}", server.local_addr());
    loop {
        std::thread::park();
    }
}

/// Parses a healthz/reload body and returns its `epoch`, failing if
/// `ok` is not `true`.
fn epoch_from_body(text: &str) -> Result<u64, String> {
    let doc = json::parse(text).map_err(|e| format!("bad JSON: {}", e.msg))?;
    if doc.get("ok").and_then(|v| v.as_bool()) != Some(true) {
        return Err(format!("body did not report ok:true: {text:?}"));
    }
    doc.get("epoch")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("no epoch in body: {text:?}"))
}

fn smoke(
    engine: Arc<RoutingEngine>,
    world: SyntheticWorld,
    model: HybridModel,
    mut config: ServerConfig,
) -> Result<(), String> {
    // The hot-swap round re-reads a real snapshot file; keep it inside
    // the workspace's build tree so the smoke run never writes outside
    // the repo.
    let tmp_dir = std::path::Path::new("target/tmp");
    std::fs::create_dir_all(tmp_dir).map_err(|e| format!("mkdir {}: {e}", tmp_dir.display()))?;
    let snapshot_path = tmp_dir.join(format!("srt_smoke_model_{}.bin", std::process::id()));
    model_io::write_file(&snapshot_path, &model).map_err(|e| format!("write snapshot: {e}"))?;
    config.model_path = Some(snapshot_path.clone());

    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", config)
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    eprintln!("srt_serve --smoke: serving on {addr}");

    // 1. Liveness, reporting the starting epoch.
    let health = request_once(addr, "GET", "/healthz", None).map_err(|e| format!("healthz: {e}"))?;
    if health.status != 200 {
        return Err(format!("healthz answered {}", health.status));
    }
    let epoch0 = epoch_from_body(&health.text()).map_err(|e| format!("healthz: {e}"))?;
    if epoch0 != 0 {
        return Err(format!("fresh engine reports epoch {epoch0}, expected 0"));
    }

    // 2. Bitwise /route parity against the in-process engine.
    let queries: Vec<Query> = QueryGenerator::new(0x5E)
        .generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, 12)
        .iter()
        .map(Query::from)
        .collect();
    let mut conn = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    for (i, q) in queries.iter().enumerate() {
        let reference = engine
            .route(q)
            .map_err(|e| format!("query {i} rejected in-process: {e}"))?;
        let body = format!(
            "{{\"source\":{},\"target\":{},\"budget_s\":{:?}}}",
            q.source.0, q.target.0, q.budget_s
        );
        let resp = conn
            .request("POST", "/route", Some(&body))
            .map_err(|e| format!("query {i}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("query {i} answered {}: {}", resp.status, resp.text()));
        }
        let doc = json::parse(&resp.text()).map_err(|e| format!("query {i}: bad JSON: {}", e.msg))?;
        let served = doc
            .get("probability")
            .and_then(|p| p.as_f64())
            .ok_or_else(|| format!("query {i}: no probability in response"))?;
        if served.to_bits() != reference.probability.to_bits() {
            return Err(format!(
                "query {i}: probability over HTTP {served} != in-process {}",
                reference.probability
            ));
        }
    }
    eprintln!(
        "srt_serve --smoke: {} /route answers bitwise-identical to the engine",
        queries.len()
    );

    // 3. Closed-loop batch.
    let mut batch_body = String::from("{\"queries\":[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            batch_body.push(',');
        }
        batch_body.push_str(&format!(
            "{{\"source\":{},\"target\":{},\"budget_s\":{:?}}}",
            q.source.0, q.target.0, q.budget_s
        ));
    }
    batch_body.push_str("],\"parallelism\":2}");
    let resp = conn
        .request("POST", "/route_batch", Some(&batch_body))
        .map_err(|e| format!("route_batch: {e}"))?;
    if resp.status != 200 {
        return Err(format!("route_batch answered {}", resp.status));
    }
    let doc = json::parse(&resp.text()).map_err(|e| format!("route_batch: bad JSON: {}", e.msg))?;
    let n_results = doc
        .get("results")
        .and_then(|r| r.as_arr())
        .map(|r| r.len())
        .unwrap_or(0);
    if n_results != queries.len() {
        return Err(format!(
            "route_batch returned {n_results} results for {} queries",
            queries.len()
        ));
    }

    // 4. Metrics counters reflect the traffic.
    let metrics = conn
        .request("GET", "/metrics", None)
        .map_err(|e| format!("metrics: {e}"))?;
    let page = metrics.text();
    let sample = |name: &str| -> Result<f64, String> {
        page.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .ok_or_else(|| format!("metric {name} missing from /metrics"))
    };
    // 12 routes + 1 batch + this scrape, at minimum.
    let requests = sample("srt_serve_requests_total")?;
    if requests < 14.0 {
        return Err(format!("srt_serve_requests_total {requests} < 14"));
    }
    if sample("srt_serve_responses_total_2xx")? < 14.0 {
        return Err("too few 2xx responses recorded".into());
    }
    sample("srt_serve_shed_total")?;
    if sample("srt_engine_queries_total")? < 24.0 {
        // 12 in-process references + 12 over HTTP + the batch.
        return Err("engine query counter did not see the traffic".into());
    }
    if sample("srt_engine_panics_total")? != 0.0 {
        return Err("smoke traffic tripped the panic counter".into());
    }
    eprintln!("srt_serve --smoke: /metrics counters consistent");

    // 5. Hot swap: /reload re-reads the snapshot and publishes epoch 1
    // while this very connection keeps getting served.
    let resp = conn
        .request("POST", "/reload", None)
        .map_err(|e| format!("reload: {e}"))?;
    if resp.status != 200 {
        return Err(format!("reload answered {}: {}", resp.status, resp.text()));
    }
    let epoch1 = epoch_from_body(&resp.text()).map_err(|e| format!("reload: {e}"))?;
    if epoch1 != 1 {
        return Err(format!("reload published epoch {epoch1}, expected 1"));
    }
    let health = conn
        .request("GET", "/healthz", None)
        .map_err(|e| format!("healthz after reload: {e}"))?;
    if epoch_from_body(&health.text()) != Ok(1) {
        return Err(format!(
            "healthz after reload: {:?}, expected epoch 1",
            health.text()
        ));
    }
    // The snapshot round-trips the same trained model, so every answer
    // must still be bitwise-identical to the (now also swapped)
    // in-process engine.
    for (i, q) in queries.iter().enumerate() {
        let reference = engine
            .route(q)
            .map_err(|e| format!("post-swap query {i} rejected in-process: {e}"))?;
        let body = format!(
            "{{\"source\":{},\"target\":{},\"budget_s\":{:?}}}",
            q.source.0, q.target.0, q.budget_s
        );
        let resp = conn
            .request("POST", "/route", Some(&body))
            .map_err(|e| format!("post-swap query {i}: {e}"))?;
        let doc =
            json::parse(&resp.text()).map_err(|e| format!("post-swap query {i}: {}", e.msg))?;
        let served = doc
            .get("probability")
            .and_then(|p| p.as_f64())
            .ok_or_else(|| format!("post-swap query {i}: no probability"))?;
        if served.to_bits() != reference.probability.to_bits() {
            return Err(format!(
                "post-swap query {i}: {served} != in-process {}",
                reference.probability
            ));
        }
    }
    eprintln!("srt_serve --smoke: reload published epoch 1, answers still bitwise-identical");

    // 6. A corrupt snapshot is rejected with 422 and the old epoch
    // keeps serving.
    let good_bytes =
        std::fs::read(&snapshot_path).map_err(|e| format!("re-read snapshot: {e}"))?;
    std::fs::write(&snapshot_path, &good_bytes[..good_bytes.len() / 2])
        .map_err(|e| format!("truncate snapshot: {e}"))?;
    let resp = conn
        .request("POST", "/reload", None)
        .map_err(|e| format!("reload (corrupt): {e}"))?;
    if resp.status != 422 {
        return Err(format!(
            "corrupt snapshot answered {} (expected 422): {}",
            resp.status,
            resp.text()
        ));
    }
    let health = conn
        .request("GET", "/healthz", None)
        .map_err(|e| format!("healthz after bad reload: {e}"))?;
    if epoch_from_body(&health.text()) != Ok(1) {
        return Err(format!(
            "bad reload moved the epoch: {:?}",
            health.text()
        ));
    }
    let probe = &queries[0];
    let body = format!(
        "{{\"source\":{},\"target\":{},\"budget_s\":{:?}}}",
        probe.source.0, probe.target.0, probe.budget_s
    );
    let resp = conn
        .request("POST", "/route", Some(&body))
        .map_err(|e| format!("probe after bad reload: {e}"))?;
    if resp.status != 200 {
        return Err(format!("probe after bad reload answered {}", resp.status));
    }
    let metrics = conn
        .request("GET", "/metrics", None)
        .map_err(|e| format!("metrics after reload: {e}"))?;
    let page = metrics.text();
    let epoch_line = page
        .lines()
        .find(|l| l.starts_with("srt_engine_epoch "))
        .ok_or("srt_engine_epoch missing from /metrics")?;
    if epoch_line != "srt_engine_epoch 1" {
        return Err(format!("unexpected {epoch_line:?} after swap round"));
    }
    eprintln!("srt_serve --smoke: corrupt snapshot rejected, epoch 1 kept serving");
    let _ = std::fs::remove_file(&snapshot_path);

    // 7. Graceful drain.
    drop(conn);
    let report = server.shutdown();
    if report.in_flight_after_drain != 0 {
        return Err(format!(
            "{} requests still in flight after drain",
            report.in_flight_after_drain
        ));
    }
    eprintln!(
        "srt_serve --smoke: drained cleanly ({} connections served, {} shed)",
        report.connections_served, report.connections_shed
    );
    Ok(())
}
