//! `srt-serve` — serve a routing engine over HTTP, or prove the serving
//! stack end-to-end with `--smoke`.
//!
//! ```text
//! srt_serve [--addr HOST:PORT] [--workers N] [--queue N] [--smoke]
//! ```
//!
//! Without `--smoke`, trains the tiny synthetic fixture world, starts
//! the server, and serves until the process is killed. With `--smoke`,
//! binds an ephemeral port and runs the CI smoke sequence: liveness
//! probe, bitwise `/route` parity against the in-process engine, a
//! closed-loop `/route_batch`, `/metrics` counter checks, and a
//! graceful drain — exiting non-zero on the first violation.

use srt_core::model::training::{train_hybrid, TrainingConfig};
use srt_core::routing::{EngineBuilder, Query, RoutingEngine};
use srt_core::{CombinePolicy, HybridCost};
use srt_ml::forest::ForestConfig;
use srt_serve::client::{request_once, Client};
use srt_serve::{json, Server, ServerConfig};
use srt_synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        workers: 0,
        queue: 64,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!("usage: srt_serve [--addr HOST:PORT] [--workers N] [--queue N] [--smoke]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Trains the tiny fixture world and builds an engine over it — the
/// same fixture the parity tests use, so the smoke run exercises a real
/// trained model, not a mock.
fn fixture_engine() -> (RoutingEngine, SyntheticWorld) {
    let world = SyntheticWorld::build(WorldConfig::tiny());
    let cfg = TrainingConfig {
        train_pairs: 120,
        test_pairs: 40,
        min_obs: 5,
        bins: 10,
        forest: ForestConfig {
            n_trees: 6,
            ..ForestConfig::default()
        },
        ..TrainingConfig::default()
    };
    let (model, _) = train_hybrid(&world, &cfg).expect("fixture world trains");
    let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
    (EngineBuilder::new(cost).build(), world)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("srt_serve: {e}");
            return ExitCode::from(2);
        }
    };

    eprintln!("srt_serve: training fixture world (tiny)...");
    let (engine, world) = fixture_engine();
    let engine = Arc::new(engine);

    let config = ServerConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        ..ServerConfig::default()
    };

    if args.smoke {
        return match smoke(engine, world, config) {
            Ok(()) => {
                println!("srt_serve --smoke: all checks passed");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("srt_serve --smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let server = match Server::start(engine, args.addr.as_str(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("srt_serve: bind {} failed: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("srt_serve: listening on http://{}", server.local_addr());
    loop {
        std::thread::park();
    }
}

fn smoke(
    engine: Arc<RoutingEngine>,
    world: SyntheticWorld,
    config: ServerConfig,
) -> Result<(), String> {
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", config)
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    eprintln!("srt_serve --smoke: serving on {addr}");

    // 1. Liveness.
    let health = request_once(addr, "GET", "/healthz", None).map_err(|e| format!("healthz: {e}"))?;
    if health.status != 200 || health.text() != "ok\n" {
        return Err(format!(
            "healthz answered {} {:?}",
            health.status,
            health.text()
        ));
    }

    // 2. Bitwise /route parity against the in-process engine.
    let queries: Vec<Query> = QueryGenerator::new(0x5E)
        .generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, 12)
        .iter()
        .map(Query::from)
        .collect();
    let mut conn = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    for (i, q) in queries.iter().enumerate() {
        let reference = engine
            .route(q)
            .map_err(|e| format!("query {i} rejected in-process: {e}"))?;
        let body = format!(
            "{{\"source\":{},\"target\":{},\"budget_s\":{:?}}}",
            q.source.0, q.target.0, q.budget_s
        );
        let resp = conn
            .request("POST", "/route", Some(&body))
            .map_err(|e| format!("query {i}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("query {i} answered {}: {}", resp.status, resp.text()));
        }
        let doc = json::parse(&resp.text()).map_err(|e| format!("query {i}: bad JSON: {}", e.msg))?;
        let served = doc
            .get("probability")
            .and_then(|p| p.as_f64())
            .ok_or_else(|| format!("query {i}: no probability in response"))?;
        if served.to_bits() != reference.probability.to_bits() {
            return Err(format!(
                "query {i}: probability over HTTP {served} != in-process {}",
                reference.probability
            ));
        }
    }
    eprintln!(
        "srt_serve --smoke: {} /route answers bitwise-identical to the engine",
        queries.len()
    );

    // 3. Closed-loop batch.
    let mut batch_body = String::from("{\"queries\":[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            batch_body.push(',');
        }
        batch_body.push_str(&format!(
            "{{\"source\":{},\"target\":{},\"budget_s\":{:?}}}",
            q.source.0, q.target.0, q.budget_s
        ));
    }
    batch_body.push_str("],\"parallelism\":2}");
    let resp = conn
        .request("POST", "/route_batch", Some(&batch_body))
        .map_err(|e| format!("route_batch: {e}"))?;
    if resp.status != 200 {
        return Err(format!("route_batch answered {}", resp.status));
    }
    let doc = json::parse(&resp.text()).map_err(|e| format!("route_batch: bad JSON: {}", e.msg))?;
    let n_results = doc
        .get("results")
        .and_then(|r| r.as_arr())
        .map(|r| r.len())
        .unwrap_or(0);
    if n_results != queries.len() {
        return Err(format!(
            "route_batch returned {n_results} results for {} queries",
            queries.len()
        ));
    }

    // 4. Metrics counters reflect the traffic.
    let metrics = conn
        .request("GET", "/metrics", None)
        .map_err(|e| format!("metrics: {e}"))?;
    let page = metrics.text();
    let sample = |name: &str| -> Result<f64, String> {
        page.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .ok_or_else(|| format!("metric {name} missing from /metrics"))
    };
    // 12 routes + 1 batch + this scrape, at minimum.
    let requests = sample("srt_serve_requests_total")?;
    if requests < 14.0 {
        return Err(format!("srt_serve_requests_total {requests} < 14"));
    }
    if sample("srt_serve_responses_total_2xx")? < 14.0 {
        return Err("too few 2xx responses recorded".into());
    }
    sample("srt_serve_shed_total")?;
    if sample("srt_engine_queries_total")? < 24.0 {
        // 12 in-process references + 12 over HTTP + the batch.
        return Err("engine query counter did not see the traffic".into());
    }
    if sample("srt_engine_panics_total")? != 0.0 {
        return Err("smoke traffic tripped the panic counter".into());
    }
    eprintln!("srt_serve --smoke: /metrics counters consistent");

    // 5. Graceful drain.
    drop(conn);
    let report = server.shutdown();
    if report.in_flight_after_drain != 0 {
        return Err(format!(
            "{} requests still in flight after drain",
            report.in_flight_after_drain
        ));
    }
    eprintln!(
        "srt_serve --smoke: drained cleanly ({} connections served, {} shed)",
        report.connections_served, report.connections_shed
    );
    Ok(())
}
