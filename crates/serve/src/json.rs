//! Hand-rolled JSON: a small value model, a strict parser, a writer
//! whose `f64` formatting round-trips **bitwise**, and the codecs for
//! the wire types (`Query` in, `RouteResult` / `EngineError` out).
//!
//! No external JSON dependency exists in this workspace's vendoring
//! policy, and none is needed: the API surface is four endpoints over a
//! handful of flat shapes. Floats are written with Rust's shortest
//! round-trip formatting (`{:?}`), so a client parsing the response
//! with a standard `f64` parser recovers the engine's answer bit for
//! bit — the property the serving integration tests pin against direct
//! `RoutingEngine::route` calls.

use srt_core::routing::{EngineError, Query, RouteResult};
use srt_graph::NodeId;
use std::fmt::Write as _;
use std::time::Duration;

/// A parsed JSON value. Object keys keep insertion order; duplicate
/// keys resolve to the first occurrence (lookup scans forward).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are `f64` — the wire types need nothing wider, and
    /// every integer the API carries (node ids, counters) is exact in
    /// the 53-bit mantissa.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer (rejects fractions,
    /// negatives, and anything past 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serialization: `json.to_string()` comes from this impl via the
/// blanket `ToString`.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Shortest round-trip float formatting; integral values still carry a
/// `.0` (Rust's `{:?}`), which JSON accepts. Non-finite values have no
/// JSON spelling and serialize as `null` — the wire types never carry
/// them (validation rejects non-finite budgets before routing).
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

/// Exact unsigned integers (ids, counters) without the float `.0`.
fn write_u64(x: u64, out: &mut String) {
    let _ = write!(out, "{x}");
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why parsing failed.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected or violated.
    pub msg: &'static str,
}

const MAX_DEPTH: usize = 64;

/// Parses one JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Decode only the multi-byte sequence at hand (its
                    // length is fixed by the leading byte) — validating
                    // the whole remaining tail per character would make
                    // string parsing quadratic in the document size.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC2..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF4 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError {
                at: start,
                msg: "invalid number",
            })
    }
}

// ---------------------------------------------------------------------------
// Wire codecs for the routing API.
// ---------------------------------------------------------------------------

/// Decodes a `Query` from its wire object:
/// `{"source": id, "target": id, "budget_s": seconds[, "deadline_ms": ms]}`.
///
/// Schema violations (missing members, wrong types, ids past `u32`)
/// fail here with a message — the handler answers `400`. *Semantic*
/// violations (unknown node, negative budget, zero deadline) are left
/// to `RoutingEngine::validate`, which answers `422` with the typed
/// [`EngineError`]; this split keeps "you sent gibberish" and "you
/// asked for the impossible" distinguishable on the wire.
pub fn query_from_json(v: &Json) -> Result<Query, String> {
    if !matches!(v, Json::Obj(_)) {
        return Err("query must be a JSON object".into());
    }
    let node = |key: &str| -> Result<NodeId, String> {
        let raw = v
            .get(key)
            .ok_or_else(|| format!("missing member {key:?}"))?;
        let id = raw
            .as_u64()
            .ok_or_else(|| format!("{key:?} must be an unsigned integer"))?;
        u32::try_from(id)
            .map(NodeId)
            .map_err(|_| format!("{key:?} exceeds the u32 id space"))
    };
    let source = node("source")?;
    let target = node("target")?;
    let budget_s = v
        .get("budget_s")
        .ok_or_else(|| "missing member \"budget_s\"".to_string())?
        .as_f64()
        .ok_or_else(|| "\"budget_s\" must be a number".to_string())?;
    let mut query = Query::new(source, target, budget_s);
    if let Some(raw) = v.get("deadline_ms") {
        let ms = raw
            .as_f64()
            .filter(|ms| ms.is_finite() && *ms >= 0.0)
            .ok_or_else(|| "\"deadline_ms\" must be a non-negative number".to_string())?;
        query = query.with_deadline(Duration::from_secs_f64(ms / 1000.0));
    }
    Ok(query)
}

/// Encodes a `RouteResult` onto the wire. Probabilities, distributions
/// and path ids round-trip bitwise (floats use shortest round-trip
/// formatting); `elapsed` is reported in integer microseconds.
pub fn route_result_to_json(r: &RouteResult) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"probability\":");
    write_f64(r.probability, &mut out);
    out.push_str(",\"path\":");
    match &r.path {
        None => out.push_str("null"),
        Some(p) => {
            out.push_str("{\"nodes\":[");
            for (i, n) in p.nodes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_u64(n.0 as u64, &mut out);
            }
            out.push_str("],\"edges\":[");
            for (i, e) in p.edges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_u64(e.0 as u64, &mut out);
            }
            out.push_str("]}");
        }
    }
    out.push_str(",\"distribution\":");
    match &r.distribution {
        None => out.push_str("null"),
        Some(d) => {
            out.push_str("{\"start\":");
            write_f64(d.start(), &mut out);
            out.push_str(",\"width\":");
            write_f64(d.width(), &mut out);
            out.push_str(",\"probs\":[");
            for (i, p) in d.probs().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_f64(*p, &mut out);
            }
            out.push_str("]}");
        }
    }
    let s = &r.stats;
    out.push_str(",\"stats\":{\"labels_created\":");
    write_u64(s.labels_created as u64, &mut out);
    out.push_str(",\"labels_expanded\":");
    write_u64(s.labels_expanded as u64, &mut out);
    out.push_str(",\"pruned_bound\":");
    write_u64(s.pruned_bound as u64, &mut out);
    out.push_str(",\"pruned_infeasible\":");
    write_u64(s.pruned_infeasible as u64, &mut out);
    out.push_str(",\"pruned_dominance\":");
    write_u64(s.pruned_dominance as u64, &mut out);
    out.push_str(",\"completed\":");
    out.push_str(if s.completed { "true" } else { "false" });
    out.push_str(",\"elapsed_us\":");
    write_u64(s.elapsed.as_micros() as u64, &mut out);
    out.push_str("}}");
    out
}

/// The machine-readable tag for each [`EngineError`] variant.
pub fn engine_error_kind(e: &EngineError) -> &'static str {
    match e {
        EngineError::InvalidBudget { .. } => "invalid_budget",
        EngineError::NodeOutOfRange { .. } => "node_out_of_range",
        EngineError::ZeroDeadline => "zero_deadline",
        EngineError::Internal => "internal",
    }
}

/// Encodes a typed engine rejection:
/// `{"error":{"kind":...,"message":...}}` plus variant-specific detail
/// members.
pub fn engine_error_to_json(e: &EngineError) -> String {
    let mut out = String::from("{\"error\":{\"kind\":");
    write_string(engine_error_kind(e), &mut out);
    out.push_str(",\"message\":");
    write_string(&e.to_string(), &mut out);
    match e {
        EngineError::InvalidBudget { budget } => {
            out.push_str(",\"budget\":");
            write_f64(*budget, &mut out);
        }
        EngineError::NodeOutOfRange { node, num_nodes } => {
            out.push_str(",\"node\":");
            write_u64(node.0 as u64, &mut out);
            out.push_str(",\"num_nodes\":");
            write_u64(*num_nodes as u64, &mut out);
        }
        EngineError::ZeroDeadline | EngineError::Internal => {}
    }
    out.push_str("}}");
    out
}

/// A generic error body for protocol-level failures (bad JSON, unknown
/// path, shed requests).
pub fn protocol_error_body(kind: &str, message: &str) -> String {
    let mut out = String::from("{\"error\":{\"kind\":");
    write_string(kind, &mut out);
    out.push_str(",\"message\":");
    write_string(message, &mut out);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reserializes_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("a\n\"bé😀".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":" x "}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some(" x "));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
            "{\"a\":1} trailing", "nan", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn large_strings_parse_in_linear_time() {
        // 2MB of plain ASCII inside one string member: under the old
        // whole-tail revalidation this was O(len²) (~terabytes of
        // scanning); linear parsing finishes instantly.
        let payload = "a".repeat(2 * 1024 * 1024);
        let doc = format!("{{\"q\":\"{payload}é😀\"}}");
        let v = parse(&doc).unwrap();
        let s = v.get("q").unwrap().as_str().unwrap();
        assert_eq!(s.len(), payload.len() + 'é'.len_utf8() + '😀'.len_utf8());
        assert!(s.ends_with("é😀"));
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for x in [
            0.0,
            -0.0,
            1.0,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            123456.789e-200,
        ] {
            let mut s = String::new();
            write_f64(x, &mut s);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn query_codec_enforces_schema_not_semantics() {
        let q = query_from_json(
            &parse(r#"{"source":3,"target":9,"budget_s":120.5,"deadline_ms":250}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(q.source, NodeId(3));
        assert_eq!(q.target, NodeId(9));
        assert_eq!(q.budget_s, 120.5);
        assert_eq!(q.deadline, Some(Duration::from_millis(250)));

        // Schema violations fail at the codec...
        for bad in [
            r#"{"target":9,"budget_s":1}"#,
            r#"{"source":-1,"target":9,"budget_s":1}"#,
            r#"{"source":1.5,"target":9,"budget_s":1}"#,
            r#"{"source":1,"target":9,"budget_s":"fast"}"#,
            r#"{"source":99999999999,"target":9,"budget_s":1}"#,
            r#"[1,9,120]"#,
        ] {
            assert!(
                query_from_json(&parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
        // ...semantic violations do not (the engine owns those).
        let semantic =
            query_from_json(&parse(r#"{"source":0,"target":0,"budget_s":-5.0}"#).unwrap());
        assert!(semantic.is_ok(), "negative budget is the engine's 422, not a 400");
    }

    #[test]
    fn engine_errors_render_typed() {
        let body = engine_error_to_json(&EngineError::NodeOutOfRange {
            node: NodeId(42),
            num_nodes: 10,
        });
        let v = parse(&body).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("node_out_of_range"));
        assert_eq!(err.get("node").unwrap().as_u64(), Some(42));
        assert_eq!(err.get("num_nodes").unwrap().as_u64(), Some(10));
    }
}
