//! The request-granular dispatch queue behind continuous batching.
//!
//! The legacy admission queue ([`crate::queue::BoundedQueue`]) holds
//! whole connections; this one holds *parsed requests*. The connection
//! plane pushes [`PendingRequest`]s with [`DispatchQueue::try_push`]
//! (full queue ⇒ the caller sheds that one request with a `503` and the
//! connection survives); the micro-batcher blocks in
//! [`DispatchQueue::pop_batch`], which drains up to `max` ready
//! requests in one lock acquisition — the heart of dynamic
//! micro-batching: under load, batches grow to whatever has queued
//! while the engine was busy; uncontended, a lone request pops
//! immediately with no artificial wait.
//!
//! Shutdown keeps the PR 7 contract at request granularity:
//! [`DispatchQueue::close`] stops admission but everything already
//! admitted remains poppable; `pop_batch` returns `None` only once the
//! queue is closed *and* empty, so the batcher drains every admitted
//! request before exiting — and a batch it has already popped (a
//! non-empty window) is always executed, never dropped.
//!
//! Like the connection queue, the whole machine is written against
//! `srt_core::sync::sys` (plain `std::sync` in normal builds) with no
//! timed waits, so the `srt-check` dispatch suite proves losslessness
//! and the batch-size bound under every interleaving at the preemption
//! bound. Time — the optional `--batch-window` top-up wait — lives in
//! the batcher loop (`crate::batched`), outside the modeled core.

use crate::http::Response;
use srt_core::routing::Query;
use srt_core::sync::sys::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::PoisonError;
use std::time::Instant;

/// A fixed-capacity request queue with non-blocking admission and
/// blocking, batch-at-a-time, drain-to-empty consumption.
pub struct DispatchQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> DispatchQueue<T> {
    /// A queue admitting at most `capacity` requests (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DispatchQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Poison-tolerant lock: a batcher panicking mid-pop must not wedge
    /// admission for the rest of the server's life.
    fn state(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to enqueue without blocking. Returns the request back
    /// when the queue is full (shed this one request) or closed
    /// (draining — shed it too).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state();
        if s.closed || s.items.len() >= self.capacity {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one request is available (or the queue is
    /// closed *and* drained — `None` is the batcher's signal to exit),
    /// then drains up to `max` requests in FIFO order. Never returns an
    /// empty batch and never exceeds `max`.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut s = self.state();
        loop {
            if !s.items.is_empty() {
                let take = s.items.len().min(max);
                return Some(s.items.drain(..take).collect());
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking top-up for a partially filled window: moves ready
    /// requests into `batch` until it holds `max_total` or the queue is
    /// empty. Returns how many were appended.
    pub fn try_drain_into(&self, batch: &mut Vec<T>, max_total: usize) -> usize {
        let mut s = self.state();
        let want = max_total.saturating_sub(batch.len()).min(s.items.len());
        for item in s.items.drain(..want) {
            batch.push(item);
        }
        want
    }

    /// Stops admission and wakes the batcher. Already-admitted requests
    /// remain poppable — close starts the drain, it does not drop work.
    pub fn close(&self) {
        self.state().closed = true;
        self.ready.notify_all();
    }

    /// Requests currently waiting (the metrics `queue_depth` gauge).
    pub fn len(&self) -> usize {
        self.state().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Identifies one registered connection slot in the readiness loop. The
/// generation guards against slot reuse: a completion for a connection
/// that died and whose slot now hosts a newcomer must not leak a
/// response to the wrong client.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) struct ConnToken {
    pub slot: usize,
    pub generation: u64,
}

/// Engine-bound work parsed out of one HTTP request. Cheap endpoints
/// (`/healthz`, `/metrics`, protocol errors) never become work items —
/// the connection plane answers them inline.
pub(crate) enum EngineWork {
    Route(Query),
    Batch {
        queries: Vec<Query>,
        parallelism: usize,
    },
    Reload,
}

/// One admitted request travelling from the connection plane to the
/// batcher and back: `seq` restores per-connection response order under
/// pipelining, `started` feeds the latency histogram at completion.
pub(crate) struct PendingRequest {
    pub conn: ConnToken,
    pub seq: u64,
    pub started: Instant,
    pub close_after: bool,
    pub work: EngineWork,
}

/// One finished request on its way back to the owning connection's
/// write buffer.
pub(crate) struct Completion {
    pub conn: ConnToken,
    pub seq: u64,
    pub started: Instant,
    pub response: Response,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn pop_batch_drains_fifo_and_respects_max() {
        let q = DispatchQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(3).unwrap();
        assert_eq!(batch, vec![0, 1, 2], "FIFO, capped at max");
        let batch = q.pop_batch(3).unwrap();
        assert_eq!(batch, vec![3, 4], "partial batch when fewer are ready");
    }

    #[test]
    fn full_queue_sheds_the_request_not_the_caller() {
        let q = DispatchQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3), "admission past capacity");
        assert_eq!(q.pop_batch(16).unwrap(), vec![1, 2]);
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = DispatchQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"), "closed queue admits nothing");
        assert_eq!(q.pop_batch(1).unwrap(), vec!["a"], "admitted work drains");
        assert_eq!(q.pop_batch(1).unwrap(), vec!["b"]);
        assert_eq!(q.pop_batch(1), None, "closed and empty signals exit");
    }

    #[test]
    fn try_drain_into_tops_up_without_blocking() {
        let q = DispatchQueue::new(8);
        let mut batch = vec![10, 11];
        assert_eq!(q.try_drain_into(&mut batch, 4), 0, "empty queue adds none");
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_drain_into(&mut batch, 4), 2, "fills to max_total");
        assert_eq!(batch, vec![10, 11, 0, 1]);
        assert_eq!(q.len(), 2, "the rest stays queued");
    }

    #[test]
    fn blocked_batcher_wakes_on_push_and_close() {
        let q = Arc::new(DispatchQueue::new(16));
        let batcher = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = Vec::new();
                let mut sizes = Vec::new();
                while let Some(batch) = q.pop_batch(4) {
                    sizes.push(batch.len());
                    seen.extend(batch);
                }
                (seen, sizes)
            })
        };
        for i in 0..32 {
            let mut item = i;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        thread::yield_now();
                    }
                }
            }
        }
        q.close();
        let (seen, sizes) = batcher.join().unwrap();
        assert_eq!(seen, (0..32).collect::<Vec<_>>(), "lossless and in order");
        assert!(sizes.iter().all(|&s| (1..=4).contains(&s)), "1 ≤ batch ≤ max");
    }
}
