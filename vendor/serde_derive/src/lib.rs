//! No-op `Serialize`/`Deserialize` derive macros for the offline `serde`
//! stub (see `vendor/README.md`).
//!
//! The stack annotates model types with serde derives for downstream
//! consumers, but all of its own persistence goes through hand-rolled
//! binary codecs (`srt_ml::codec`, `srt_graph::io`, `srt_core::model::io`)
//! — no serde serializer is ever invoked. These derives therefore expand
//! to nothing: the attribute compiles, and no impls are generated.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
