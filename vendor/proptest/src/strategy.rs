//! Value-generation strategies (no shrinking — see the crate docs).

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy producing `f` applied to this strategy's values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// A strategy that generates an intermediate value, builds a second
    /// strategy from it, and draws from that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// A strategy that redraws until `f` accepts the value (bounded; the
    /// `_reason` matches the real crate's signature).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _reason: &'static str,
        f: F,
    ) -> Filter<Self, F> {
        Filter { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values");
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Length specification for [`crate::collection::vec`]: a fixed size or a
/// half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite floats over a wide range (no NaN/inf, as strategies that
        // need those construct them explicitly).
        (rng.gen::<f64>() - 0.5) * 2e9
    }
}

/// The full-domain strategy of an [`Arbitrary`] type:
/// `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (5usize..9).generate(&mut r);
            assert!((5..9).contains(&v));
            let f = (1.0f64..2.0).generate(&mut r);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_flat_map_and_filter_compose() {
        let mut r = rng();
        let s = (0usize..10)
            .prop_map(|n| n * 2)
            .prop_filter("even and small", |&n| n < 10)
            .prop_flat_map(|n| (n..n + 3).prop_map(move |m| (n, m)));
        for _ in 0..200 {
            let (n, m) = s.generate(&mut r);
            assert!(n % 2 == 0 && n < 10);
            assert!((n..n + 3).contains(&m));
        }
    }

    #[test]
    fn vec_strategy_respects_both_size_forms() {
        let mut r = rng();
        for _ in 0..100 {
            let fixed = crate::collection::vec(0u8..5, 7usize).generate(&mut r);
            assert_eq!(fixed.len(), 7);
            let ranged = crate::collection::vec(0u8..5, 2..6).generate(&mut r);
            assert!((2..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn the_macro_end_to_end() {
        crate::proptest! {
            #![proptest_config(crate::test_runner::ProptestConfig::with_cases(16))]
            #[allow(unused)]
            fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
                crate::prop_assume!(a != b);
                crate::prop_assert_eq!(a + b, b + a);
                crate::prop_assert!(a + b >= a, "overflowed: {} {}", a, b);
            }
        }
        addition_commutes();
    }
}
