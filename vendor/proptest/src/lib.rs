//! Offline API-compatible subset of the
//! [`proptest`](https://docs.rs/proptest) crate, vendored because this
//! repository builds without network access.
//!
//! Provides the surface the stack's property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`prop_flat_map`/`prop_filter`,
//! range and tuple strategies, [`collection::vec`], [`any`], and the
//! `prop_assert*`/`prop_assume!` macros. Each test runs a configurable
//! number of deterministically seeded random cases (seeded from the test
//! name, so failures reproduce run over run).
//!
//! Omitted relative to the real crate: shrinking (a failing case reports
//! its case index and message but is not minimized), persisted failure
//! regressions, and the full strategy combinator zoo.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration (the subset the stack sets).
pub mod test_runner {
    /// Per-test configuration; construct with
    /// [`ProptestConfig::with_cases`].
    #[derive(Copy, Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted random cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test panics with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject(String),
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// FNV-1a over a test name: the deterministic per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property test: repeatedly generates inputs with `gen_case`
/// and runs `run_case` until `config.cases` cases are accepted. Panics on
/// the first failing case; gives up if rejections swamp acceptances.
pub fn run_property<V>(
    name: &str,
    config: test_runner::ProptestConfig,
    mut gen_case: impl FnMut(&mut StdRng) -> V,
    mut run_case: impl FnMut(V) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    while accepted < config.cases {
        let value = gen_case(&mut rng);
        match run_case(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.cases as u64 * 64 + 4096 {
                    panic!(
                        "property `{name}`: prop_assume! rejected {rejected} cases \
                         with only {accepted}/{} accepted — strategy too narrow",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {accepted}: {msg}");
            }
        }
    }
}

/// Declares property tests: `fn name(pattern in strategy, ...) { body }`
/// items, optionally preceded by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_property(
                    stringify!($name),
                    config,
                    |rng| ($($crate::strategy::Strategy::generate(&($strat), rng)),+ ,),
                    |($($arg),+ ,)| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case with an assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
}

/// Rejects the current case (it is regenerated, not failed) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}
