//! Offline API-compatible subset of the
//! [`criterion`](https://docs.rs/criterion) benchmark harness, vendored
//! because this repository builds without network access.
//!
//! Supports the harness surface the bench suite uses: `criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], `bench_with_input`, [`BenchmarkId`],
//! [`black_box`] and `sample_size`. Measurement is a deliberately simple
//! adaptive loop (calibrate iteration count to ~`measurement_time / 5`,
//! take `sample_size` samples, report mean ± sd and median); there is no
//! HTML report, outlier analysis or comparison to saved baselines.
//!
//! `--test` (what `cargo bench -- --test` forwards) runs every benchmark
//! body exactly once, as the real harness does, so CI can smoke-test the
//! bench suite without paying for measurement.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and runner, handed to each `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with("--"))
            .cloned();
        Criterion {
            test_mode: args.iter().any(|a| a == "--test"),
            filter,
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock spent measuring each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let (n, t) = (self.sample_size, self.measurement_time);
        self.run_one(id, n, t, &mut f);
        self
    }

    /// Opens a named group of related benchmarks. The group starts from
    /// the current defaults; settings changed on the group stay scoped to
    /// it, as in the real harness.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
            measurement_time,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        f: &mut F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                mode: Mode::Once,
                samples: Vec::new(),
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Calibrate the per-sample iteration count on a 1-iteration probe.
        let mut probe = Bencher {
            mode: Mode::Timed { iters: 1 },
            samples: Vec::new(),
        };
        f(&mut probe);
        let per_iter = probe.samples.first().copied().unwrap_or(Duration::ZERO);
        let budget = measurement_time.as_secs_f64() / sample_size as f64;
        let iters = if per_iter.is_zero() {
            1000
        } else {
            ((budget / per_iter.as_secs_f64()).ceil() as u64).clamp(1, 10_000_000)
        };

        let mut b = Bencher {
            mode: Mode::Timed { iters },
            samples: Vec::with_capacity(sample_size),
        };
        for _ in 0..sample_size {
            f(&mut b);
        }
        let per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / iters as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let var = per_iter
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / per_iter.len() as f64;
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = sorted[sorted.len() / 2];
        println!(
            "{id:<48} time: [mean {} ± {}  median {}]  ({} samples × {iters} iters)",
            fmt_time(mean),
            fmt_time(var.sqrt()),
            fmt_time(median),
            per_iter.len(),
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

enum Mode {
    Once,
    Timed { iters: u64 },
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs the routine (once in `--test` mode, `iters` times when
    /// measuring) and records the elapsed wall-clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Once => {
                black_box(routine());
            }
            Mode::Timed { iters } => {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.samples.push(t0.elapsed());
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix and (scoped)
/// measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock per benchmark in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name and/or parameter value.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a benchmark group: a list of `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + 1));
        let mut g = c.benchmark_group("smoke/group");
        g.sample_size(3).measurement_time(Duration::from_millis(10));
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7u64 * 7));
        g.finish();
    }

    #[test]
    fn harness_runs_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            sample_size: 2,
            measurement_time: Duration::from_millis(1),
        };
        target(&mut c);
    }

    #[test]
    fn harness_runs_in_measure_mode() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            sample_size: 2,
            measurement_time: Duration::from_millis(5),
        };
        target(&mut c);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("conv", 8).to_string(), "conv/8");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}
