//! Offline API-compatible subset of the [`bytes`](https://docs.rs/bytes)
//! crate, vendored because this repository builds without network access.
//!
//! Only the surface the stack's binary snapshot codecs use is provided:
//! [`BytesMut`] with the little-endian `put_*` writers, [`Bytes`] as a
//! frozen read-only buffer, and the [`Buf`]/[`BufMut`] traits with the
//! corresponding `get_*` readers on `&[u8]`.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte buffer produced by [`BytesMut::freeze`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Sequential little-endian writers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Sequential little-endian readers over a shrinking cursor.
///
/// # Panics
/// Like the real crate, the `get_*` methods panic when fewer than the
/// required bytes remain — callers must check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies out the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(-2.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 1 + 4 + 8 + 8 + 2);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.get_f64_le(), -2.5);
        let mut tail = [0u8; 2];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }

    #[test]
    fn advance_skips() {
        let mut cur: &[u8] = &[1, 2, 3, 4];
        cur.advance(3);
        assert_eq!(cur.get_u8(), 4);
    }
}
