//! Offline stub of the [`serde`](https://docs.rs/serde) facade, vendored
//! because this repository builds without network access.
//!
//! The stack derives `Serialize`/`Deserialize` on its model types so a
//! future PR can plug in a real serde format, but every current
//! persistence path uses the hand-rolled binary codecs. The derives
//! re-exported here (from the sibling `serde_derive` stub) expand to
//! nothing, and the marker traits are blanket-implemented so generic
//! bounds keep compiling. Swapping this stub for the real crate is a
//! `Cargo.toml` change only.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait SerializeTrait {}
impl<T: ?Sized> SerializeTrait for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait DeserializeTrait {}
impl<T: ?Sized> DeserializeTrait for T {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Clone, Debug, Serialize, Deserialize)]
    struct Probe {
        #[allow(dead_code)]
        x: u32,
    }

    #[test]
    fn derives_compile_and_generate_nothing() {
        let p = Probe { x: 7 };
        assert_eq!(p.clone().x, 7);
    }
}
