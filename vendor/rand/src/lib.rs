//! Offline API-compatible subset of the [`rand`](https://docs.rs/rand)
//! crate, vendored because this repository builds without network access.
//!
//! The stack only needs seeded, deterministic streams: [`rngs::StdRng`]
//! here is xoshiro256** seeded via SplitMix64 — a different (but
//! high-quality) generator than the real crate's ChaCha12, which is fine
//! because nothing depends on the exact stream, only on determinism.
//!
//! Provided surface: `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` for the unsigned/float ranges the stack draws from, and
//! `seq::SliceRandom::{shuffle, choose}`.

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics on an empty range, like the real crate.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Widen to u128 so `hi == MAX` cannot overflow the span.
                let span = (hi - lo) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Ergonomic sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from `T`'s standard distribution (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stack's deterministic workhorse RNG: xoshiro256** seeded via
    /// SplitMix64. (The real crate's `StdRng` is ChaCha12; only
    /// determinism matters here, not the exact stream.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Trivial mock generators for tests that need a fixed stream.
    pub mod mock {
        use crate::RngCore;

        /// Emits `initial`, `initial + increment`, ... — a predictable
        /// arithmetic stream, mirroring the real crate's mock RNG.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// A stream starting at `initial`, advancing by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` for an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity (astronomically unlikely)");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
