//! # stochastic-routing — facade crate
//!
//! Re-exports the full hybrid stochastic-routing stack (reproduction of
//! Pedersen, Yang & Jensen, "A Hybrid Learning Approach to Stochastic
//! Routing", ICDE 2020) behind one dependency:
//!
//! * [`graph`] — road-network substrate,
//! * [`dist`] — travel-time distribution algebra,
//! * [`ml`] — learning substrate (forests, logistic regression, ...),
//! * [`synth`] — synthetic networks, dependent trajectories, workloads,
//! * [`core`] — the hybrid model and probabilistic budget routing,
//! * [`eval`] — experiment harness reproducing the paper's tables.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use srt_core as core;
pub use srt_dist as dist;
pub use srt_eval as eval;
pub use srt_graph as graph;
pub use srt_ml as ml;
pub use srt_synth as synth;
