//! The paper's concrete numbers, verified through the experiment harness.

use stochastic_routing::eval::experiments::{intro, motivating};
use stochastic_routing::eval::setup::{build_context, Scale};

#[test]
fn e1_airport_table_is_exact() {
    let (_, r) = intro::run();
    // Paper: P1 gives 0.9 within 60 min, P2 gives 0.8; means 53 vs 51.
    assert!((r.p1_on_time - 0.9).abs() < 1e-12);
    assert!((r.p2_on_time - 0.8).abs() < 1e-12);
    assert!((r.p1_mean - 53.0).abs() < 1e-9);
    assert!((r.p2_mean - 51.0).abs() < 1e-9);
    assert_eq!(r.probabilistic_choice(), "P1");
    assert_eq!(r.mean_choice(), "P2");
}

#[test]
fn e2_motivating_example_is_exact() {
    let (_, r) = motivating::run();
    // Paper: convolution {30: .25, 35: .50, 40: .25}; truth {30: .5, 40: .5}.
    assert!((r.convolved.prob(0) - 0.25).abs() < 1e-12);
    assert!((r.convolved.prob(1) - 0.50).abs() < 1e-12);
    assert!((r.convolved.prob(2) - 0.25).abs() < 1e-12);
    assert!((r.ground_truth.prob(0) - 0.5).abs() < 1e-12);
    assert!(r.kl > 0.0);
}

#[test]
fn e3_to_e6_shapes_hold_at_tiny_scale() {
    use stochastic_routing::eval::experiments::{dependence, efficiency, model_quality, quality};

    let ctx = build_context(Scale::Tiny);

    // E3: hybrid no worse than convolution.
    let (_, report) = model_quality::run(&ctx);
    assert!(report.kl_hybrid_mean <= report.kl_convolution_mean * 1.1);

    // E4: dependence rate in the paper's neighbourhood.
    let (_, dep) = dependence::run(&ctx, 150);
    assert!((0.4..=0.95).contains(&dep.labelled_fraction));

    // E5: anytime never beats exhaustive.
    let (_, rows) = quality::run(&ctx, 6);
    for row in &rows {
        for &w in &row.win_rates[1..] {
            assert!(w <= row.win_rates[0] + 1e-9);
        }
    }

    // E6: search effort grows with query distance.
    let (_, eff) = efficiency::run(&ctx, 6);
    assert!(eff.len() >= 2);
    assert!(eff.last().unwrap().mean_labels >= eff.first().unwrap().mean_labels);
}
