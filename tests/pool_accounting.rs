//! Allocation-accounting certification of the pooled distribution
//! algebra: a warm [`RoutingEngine`] re-routing a workload mints **zero**
//! new histogram buffers — every label payload cycles between the arena
//! and the worker pool — while answers stay bitwise identical. This is
//! the regression gate for "steady-state serving is allocation-free for
//! label histograms"; it runs in the `routing-soundness` CI job.

use std::sync::OnceLock;
use stochastic_routing::core::model::training::{train_hybrid, TrainingConfig};
use stochastic_routing::core::routing::{EngineBuilder, Query, RouteResult, RouterConfig};
use stochastic_routing::core::{CombinePolicy, HybridCost, HybridModel};
use stochastic_routing::ml::forest::ForestConfig;
use stochastic_routing::synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};

fn fixture() -> &'static (SyntheticWorld, HybridModel) {
    static FIX: OnceLock<(SyntheticWorld, HybridModel)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let cfg = TrainingConfig {
            train_pairs: 120,
            test_pairs: 40,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(&world, &cfg).expect("fixture trains");
        (world, model)
    })
}

fn workload(n: usize) -> Vec<Query> {
    let (world, _) = fixture();
    let mut qg = QueryGenerator::new(0xA110C);
    qg.generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, n)
        .iter()
        .map(Query::from)
        .collect()
}

fn assert_bitwise_identical(a: &RouteResult, b: &RouteResult, what: &str) {
    assert_eq!(
        a.probability.to_bits(),
        b.probability.to_bits(),
        "{what}: probability differs"
    );
    let path_a = a.path.as_ref().map(|p| (&p.nodes, &p.edges));
    let path_b = b.path.as_ref().map(|p| (&p.nodes, &p.edges));
    assert_eq!(path_a, path_b, "{what}: path differs");
    match (&a.distribution, &b.distribution) {
        (Some(da), Some(db)) => {
            assert_eq!(da.start().to_bits(), db.start().to_bits(), "{what}: start");
            assert_eq!(da.width().to_bits(), db.width().to_bits(), "{what}: width");
            assert_eq!(da.num_bins(), db.num_bins(), "{what}: bins");
            for (x, y) in da.probs().iter().zip(db.probs()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{what}: mass differs");
            }
        }
        (None, None) => {}
        _ => panic!("{what}: one result has a distribution, the other not"),
    }
}

/// The acceptance gate: route the same batch twice through one engine on
/// one worker; the second pass must mint no new histogram buffers (all
/// payload traffic served by pool reuse) and reproduce every answer bit
/// for bit.
#[test]
fn warm_engine_rerouting_a_batch_mints_no_buffers() {
    let (world, model) = fixture();
    let cost = HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid);
    let engine = EngineBuilder::new(cost)
        .config(RouterConfig::default())
        .build();
    let queries = workload(8);

    // Pass 1 (cold): establishes the pool's high-water mark.
    let first: Vec<RouteResult> = engine
        .route_batch(&queries, 1)
        .into_iter()
        .map(|r| r.expect("workload queries are valid"))
        .collect();
    let cold = engine.stats();
    assert!(cold.pool_misses > 0, "a cold pool must mint buffers");

    // Pass 2 (warm): same batch, same single worker — the context (and
    // its histogram pool) comes back from the engine's context pool.
    let second: Vec<RouteResult> = engine
        .route_batch(&queries, 1)
        .into_iter()
        .map(|r| r.expect("workload queries are valid"))
        .collect();
    let warm = engine.stats();

    assert_eq!(
        warm.pool_misses, cold.pool_misses,
        "a warm engine minted new histogram buffers on the second pass"
    );
    assert!(
        warm.pool_reuse > cold.pool_reuse,
        "the second pass should be served from the pool's free list"
    );
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_bitwise_identical(a, b, &format!("query {i} cold vs warm"));
    }

    // And the context really was recycled, not rebuilt.
    assert_eq!(engine.pooled_contexts(), 1, "batch context was not pooled");
}

/// The same guarantee through the caller-held-context API: replaying a
/// workload through a warm `SearchContext` keeps its pool's mint counter
/// flat.
#[test]
fn warm_search_context_replays_without_minting() {
    let (world, model) = fixture();
    let cost = HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid);
    let engine = EngineBuilder::new(cost)
        .config(RouterConfig::default())
        .build();
    let queries = workload(6);

    let mut ctx = engine.new_context();
    let first: Vec<RouteResult> = queries
        .iter()
        .map(|q| engine.route_with(q, &mut ctx).expect("valid"))
        .collect();
    let cold_mints = ctx.pool_stats().mints;
    assert!(cold_mints > 0);

    for round in 0..3 {
        for (i, q) in queries.iter().enumerate() {
            let r = engine.route_with(q, &mut ctx).expect("valid");
            assert_bitwise_identical(&r, &first[i], &format!("round {round} query {i}"));
        }
        assert_eq!(
            ctx.pool_stats().mints,
            cold_mints,
            "warm context minted a buffer in replay round {round}"
        );
    }
    assert!(ctx.pool_stats().reuses > 0);
}

/// Pool counters surface through `EngineStats` snapshots and reset with
/// them; per-query `SearchStats` are unaffected by pooling.
#[test]
fn pool_counters_snapshot_and_reset() {
    let (world, model) = fixture();
    let cost = HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid);
    let engine = EngineBuilder::new(cost)
        .config(RouterConfig::default())
        .build();
    let queries = workload(3);
    for q in &queries {
        engine.route(q).expect("valid");
    }

    let handle = engine.stats_handle();
    let snap = handle.snapshot();
    assert_eq!(snap, engine.stats(), "handle and engine snapshots differ");
    assert_eq!(snap.queries, queries.len() as u64);
    assert!(snap.pool_misses > 0 || snap.pool_reuse > 0);

    handle.reset();
    assert_eq!(engine.stats(), Default::default());
}
