//! Failure injection: random corruption of the binary snapshot formats
//! must always produce a clean error (or a valid decode for benign
//! mutations) — never a panic, hang or absurd allocation.

use proptest::prelude::*;
use stochastic_routing::core::model::io as model_io;
use stochastic_routing::core::model::training::{train_hybrid, TrainingConfig};
use stochastic_routing::graph::io as graph_io;
use stochastic_routing::ml::forest::ForestConfig;
use stochastic_routing::synth::{SyntheticWorld, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static SyntheticWorld {
    static W: OnceLock<SyntheticWorld> = OnceLock::new();
    W.get_or_init(|| SyntheticWorld::build(WorldConfig::tiny()))
}

fn model_snapshot() -> &'static [u8] {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| {
        let cfg = TrainingConfig {
            train_pairs: 80,
            test_pairs: 30,
            min_obs: 5,
            bins: 8,
            forest: ForestConfig {
                n_trees: 4,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(world(), &cfg).expect("fixture trains");
        model_io::to_bytes(&model).to_vec()
    })
}

fn graph_snapshot() -> &'static [u8] {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| graph_io::to_bytes(&world().graph).to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte flips anywhere in a model snapshot never panic.
    #[test]
    fn model_decoder_survives_byte_flips(offset in 0usize..1 << 16, bit in 0u8..8) {
        let mut data = model_snapshot().to_vec();
        let off = offset % data.len();
        data[off] ^= 1 << bit;
        // Either a clean decode (benign flip, e.g. in a float mantissa) or
        // a clean error — the point is that it returns.
        let _ = model_io::from_bytes(&data);
    }

    /// Truncations of a model snapshot never panic.
    #[test]
    fn model_decoder_survives_truncation(cut in 0usize..1 << 16) {
        let data = model_snapshot();
        let cut = cut % data.len();
        prop_assert!(model_io::from_bytes(&data[..cut]).is_err());
    }

    /// Byte flips anywhere in a graph snapshot never panic.
    #[test]
    fn graph_decoder_survives_byte_flips(offset in 0usize..1 << 16, bit in 0u8..8) {
        let mut data = graph_snapshot().to_vec();
        let off = offset % data.len();
        data[off] ^= 1 << bit;
        let _ = graph_io::from_bytes(&data);
    }

    /// Random garbage is rejected by both decoders.
    #[test]
    fn decoders_reject_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = model_io::from_bytes(&data);
        let _ = graph_io::from_bytes(&data);
    }
}
