//! Failure injection: random corruption of the binary snapshot formats
//! must always produce a clean error (or a valid decode for benign
//! mutations) — never a panic, hang or absurd allocation. The same
//! corpus drives the hot-swap admission path: a corrupt v3 snapshot fed
//! to [`RoutingEngine::swap_model_bytes`] must be rejected with the old
//! epoch still serving bitwise-identically, and a benign mutation that
//! decodes must publish exactly one new epoch.

use proptest::prelude::*;
use stochastic_routing::core::model::io as model_io;
use stochastic_routing::core::model::training::{train_hybrid, TrainingConfig};
use stochastic_routing::core::routing::{EngineBuilder, Query, RouteResult, RoutingEngine};
use stochastic_routing::core::{CombinePolicy, HybridCost, HybridModel};
use stochastic_routing::graph::io as graph_io;
use stochastic_routing::ml::forest::ForestConfig;
use stochastic_routing::synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};
use std::sync::OnceLock;

fn world() -> &'static SyntheticWorld {
    static W: OnceLock<SyntheticWorld> = OnceLock::new();
    W.get_or_init(|| SyntheticWorld::build(WorldConfig::tiny()))
}

fn model() -> &'static HybridModel {
    static M: OnceLock<HybridModel> = OnceLock::new();
    M.get_or_init(|| {
        let cfg = TrainingConfig {
            train_pairs: 80,
            test_pairs: 30,
            min_obs: 5,
            bins: 8,
            forest: ForestConfig {
                n_trees: 4,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(world(), &cfg).expect("fixture trains");
        // The swap-rejection cases target the full v3 layout.
        assert!(model.calibration.is_some() && model.envelope.is_some());
        model
    })
}

fn model_snapshot() -> &'static [u8] {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| model_io::to_bytes(model()).to_vec())
}

/// A fresh engine over the fixture model, plus a probe query and its
/// epoch-0 answer (the drift detector for rejected swaps).
fn probe_engine() -> (RoutingEngine, Query, &'static RouteResult) {
    static PROBE: OnceLock<(Query, RouteResult)> = OnceLock::new();
    let engine = EngineBuilder::new(HybridCost::from_ground_truth(
        world(),
        model(),
        CombinePolicy::Hybrid,
    ))
    .build();
    let (q, reference) = PROBE.get_or_init(|| {
        let w = world();
        let q = Query::from(
            &QueryGenerator::new(0x5FA2)
                .generate(&w.graph, &w.model, DistanceCategory::ZeroToOne, 1)[0],
        );
        let r = EngineBuilder::new(HybridCost::from_ground_truth(
            w,
            model(),
            CombinePolicy::Hybrid,
        ))
        .build()
        .route(&q)
        .expect("probe query routes");
        (q, r)
    });
    (engine, *q, reference)
}

fn assert_probe_unchanged(engine: &RoutingEngine, q: &Query, reference: &RouteResult) {
    let r = engine.route(q).expect("probe stays routable");
    assert_eq!(r.probability.to_bits(), reference.probability.to_bits());
    assert_eq!(
        r.path.as_ref().map(|p| (&p.nodes, &p.edges)),
        reference.path.as_ref().map(|p| (&p.nodes, &p.edges))
    );
    assert_eq!(r.distribution, reference.distribution);
}

fn graph_snapshot() -> &'static [u8] {
    static B: OnceLock<Vec<u8>> = OnceLock::new();
    B.get_or_init(|| graph_io::to_bytes(&world().graph).to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte flips anywhere in a model snapshot never panic.
    #[test]
    fn model_decoder_survives_byte_flips(offset in 0usize..1 << 16, bit in 0u8..8) {
        let mut data = model_snapshot().to_vec();
        let off = offset % data.len();
        data[off] ^= 1 << bit;
        // Either a clean decode (benign flip, e.g. in a float mantissa) or
        // a clean error — the point is that it returns.
        let _ = model_io::from_bytes(&data);
    }

    /// Truncations of a model snapshot never panic.
    #[test]
    fn model_decoder_survives_truncation(cut in 0usize..1 << 16) {
        let data = model_snapshot();
        let cut = cut % data.len();
        prop_assert!(model_io::from_bytes(&data[..cut]).is_err());
    }

    /// Byte flips anywhere in a graph snapshot never panic.
    #[test]
    fn graph_decoder_survives_byte_flips(offset in 0usize..1 << 16, bit in 0u8..8) {
        let mut data = graph_snapshot().to_vec();
        let off = offset % data.len();
        data[off] ^= 1 << bit;
        let _ = graph_io::from_bytes(&data);
    }

    /// Random garbage is rejected by both decoders.
    #[test]
    fn decoders_reject_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = model_io::from_bytes(&data);
        let _ = graph_io::from_bytes(&data);
    }

    /// Hot-swapping a byte-flipped v3 snapshot either publishes exactly
    /// one new epoch (benign flip that still decodes) or is rejected
    /// with the old epoch serving bitwise-identically — never a crash,
    /// never a half-applied model.
    #[test]
    fn swap_survives_byte_flips(offset in 0usize..1 << 16, bit in 0u8..8) {
        let mut data = model_snapshot().to_vec();
        let off = offset % data.len();
        data[off] ^= 1 << bit;
        let (engine, q, reference) = probe_engine();
        match engine.swap_model_bytes(&data) {
            Ok(epoch) => {
                prop_assert_eq!(epoch, 1);
                prop_assert_eq!(engine.epoch(), 1);
                // A benign flip decodes to *some* valid model; the swap
                // must still leave the engine answering.
                let _ = engine.route(&q).expect("engine serves on the new epoch");
            }
            Err(_) => {
                prop_assert_eq!(engine.epoch(), 0);
                assert_probe_unchanged(&engine, &q, reference);
            }
        }
    }

    /// Truncated v3 snapshots never swap: typed rejection, epoch
    /// unchanged, answers drift-free.
    #[test]
    fn swap_rejects_truncation(cut in 0usize..1 << 16) {
        let data = model_snapshot();
        let cut = cut % data.len();
        let (engine, q, reference) = probe_engine();
        prop_assert!(engine.swap_model_bytes(&data[..cut]).is_err());
        prop_assert_eq!(engine.epoch(), 0);
        assert_probe_unchanged(&engine, &q, reference);
    }
}
