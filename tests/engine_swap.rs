//! Certification of the zero-downtime model hot swap:
//!
//! * **parity** — after `swap_model(B)` every answer is bitwise-identical
//!   to a fresh engine built over model B (same graph, same marginals);
//!   swapping back restores model A's answers exactly,
//! * **linearizability** — `route_batch` racing a storm of swaps never
//!   produces a hybrid answer: every single result is bitwise-identical
//!   to *either* the old epoch's answer *or* the new one's, per query,
//! * **isolation** — the bounds cache is epoch-keyed, so a swap can
//!   never serve `OptimisticBounds` computed under the previous model,
//! * **rejection** — corrupt snapshots, bins mismatches and non-finite
//!   calibration are refused with a typed [`SwapError`] while the old
//!   epoch keeps serving bitwise-unchanged,
//! * **bookkeeping** — the epoch counter increments per successful swap,
//!   shows up in `StatsSnapshot`, and survives `reset_stats` (it names
//!   which model is serving, not how much traffic it saw).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use stochastic_routing::core::model::io as model_io;
use stochastic_routing::core::model::training::{train_hybrid, TrainingConfig};
use stochastic_routing::core::routing::{
    EngineBuilder, Query, RouteResult, RouterConfig, RoutingEngine, SwapError,
};
use stochastic_routing::core::{CombinePolicy, HybridCost, HybridModel};
use stochastic_routing::ml::forest::ForestConfig;
use stochastic_routing::synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};

/// One world, two independently trained models over it — the swap
/// candidates. Different seeds and forest sizes make their predictions
/// (and therefore routed answers) genuinely diverge.
fn fixture() -> &'static (SyntheticWorld, HybridModel, HybridModel) {
    static FIX: OnceLock<(SyntheticWorld, HybridModel, HybridModel)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let base = TrainingConfig {
            train_pairs: 120,
            test_pairs: 40,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model_a, _) = train_hybrid(&world, &base).expect("model A trains");
        let spiced = TrainingConfig {
            train_pairs: 140,
            seed: 0xBEEF,
            forest: ForestConfig {
                n_trees: 7,
                ..ForestConfig::default()
            },
            ..base
        };
        let (model_b, _) = train_hybrid(&world, &spiced).expect("model B trains");
        (world, model_a, model_b)
    })
}

fn cost_over(model: &HybridModel) -> HybridCost {
    let (world, _, _) = fixture();
    HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid)
}

fn engine_over(model: &HybridModel) -> RoutingEngine {
    EngineBuilder::new(cost_over(model))
        .config(RouterConfig::default())
        .build()
}

fn workload(n: usize) -> Vec<Query> {
    let (world, _, _) = fixture();
    QueryGenerator::new(0x54A9)
        .generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, n)
        .iter()
        .map(Query::from)
        .collect()
}

/// Bitwise equality, ignoring only wall-clock time.
fn identical(a: &RouteResult, b: &RouteResult) -> bool {
    a.probability.to_bits() == b.probability.to_bits()
        && a.path.as_ref().map(|p| (&p.nodes, &p.edges))
            == b.path.as_ref().map(|p| (&p.nodes, &p.edges))
        && a.distribution == b.distribution
        && (a.stats.labels_created, a.stats.labels_expanded, a.stats.completed)
            == (b.stats.labels_created, b.stats.labels_expanded, b.stats.completed)
}

fn assert_identical(a: &RouteResult, b: &RouteResult, what: &str) {
    assert!(
        identical(a, b),
        "{what}: answers differ ({} vs {})",
        a.probability,
        b.probability
    );
}

#[test]
fn swapped_engine_is_bitwise_identical_to_a_fresh_one() {
    let (_, model_a, model_b) = fixture();
    let queries = workload(8);
    let fresh_a = engine_over(model_a);
    let fresh_b = engine_over(model_b);
    let ref_a: Vec<RouteResult> = queries.iter().map(|q| fresh_a.route(q).unwrap()).collect();
    let ref_b: Vec<RouteResult> = queries.iter().map(|q| fresh_b.route(q).unwrap()).collect();
    assert!(
        queries
            .iter()
            .enumerate()
            .any(|(i, _)| !identical(&ref_a[i], &ref_b[i])),
        "fixture models route identically — the swap tests would prove nothing"
    );

    let engine = engine_over(model_a);
    assert_eq!(engine.epoch(), 0);
    // Warm the epoch-0 bounds cache so the swap has stale state to shed.
    for (i, q) in queries.iter().enumerate() {
        assert_identical(&engine.route(q).unwrap(), &ref_a[i], &format!("pre-swap {i}"));
    }
    assert!(engine.bounds_cached() > 0);

    let epoch = engine.swap_model(model_b.clone()).expect("valid model swaps");
    assert_eq!(epoch, 1);
    assert_eq!(engine.epoch(), 1);
    // The per-target bounds cache died with epoch 0: nothing computed
    // under model A may bound model B's searches.
    assert_eq!(engine.bounds_cached(), 0, "stale bounds leaked across the swap");
    for (i, q) in queries.iter().enumerate() {
        assert_identical(&engine.route(q).unwrap(), &ref_b[i], &format!("post-swap {i}"));
    }

    // Swapping back restores model A bit-for-bit.
    assert_eq!(engine.swap_model(model_a.clone()), Ok(2));
    for (i, q) in queries.iter().enumerate() {
        assert_identical(&engine.route(q).unwrap(), &ref_a[i], &format!("swap-back {i}"));
    }
}

#[test]
fn swap_from_snapshot_bytes_matches_swap_from_memory() {
    let (_, model_a, model_b) = fixture();
    let queries = workload(6);
    let fresh_b = engine_over(model_b);

    let engine = engine_over(model_a);
    let bytes = model_io::to_bytes(model_b);
    let epoch = engine.swap_model_bytes(&bytes).expect("round-tripped snapshot swaps");
    assert_eq!(epoch, 1);
    for (i, q) in queries.iter().enumerate() {
        assert_identical(
            &engine.route(q).unwrap(),
            &fresh_b.route(q).unwrap(),
            &format!("bytes-swap {i}"),
        );
    }
}

#[test]
fn swap_across_snapshot_versions_degrades_and_recovers() {
    use bytes::BufMut;

    // An engine built from a full v3 model hot-swaps onto a v1
    // snapshot (no calibration, no envelope — margin dominance and the
    // certified-envelope bound degrade to their conservative forms)
    // and back, with each epoch bitwise-matching a fresh engine built
    // from the same decoded model.
    let (_, model_a, model_b) = fixture();
    let queries = workload(6);
    let engine = engine_over(model_a);

    // Hand-assemble the v1 layout for model B, exactly like the io
    // round-trip suite does: header + estimator + classifier only.
    let mut v1 = bytes::BytesMut::new();
    v1.put_u32_le(0x5352_4D4F);
    v1.put_u32_le(1);
    v1.put_u32_le(model_b.bins as u32);
    model_b.estimator.write_bytes(&mut v1);
    model_b.classifier.write_bytes(&mut v1);

    assert_eq!(engine.swap_model_bytes(&v1), Ok(1));
    let decoded_v1 = model_io::from_bytes(&v1).unwrap();
    assert!(decoded_v1.calibration.is_none() && decoded_v1.envelope.is_none());
    let fresh_v1 = engine_over(&decoded_v1);
    for (i, q) in queries.iter().enumerate() {
        assert_identical(
            &engine.route(q).unwrap(),
            &fresh_v1.route(q).unwrap(),
            &format!("v1-epoch {i}"),
        );
    }

    // Swapping forward onto the full v3 form restores every pruning
    // mechanism in one publish.
    assert_eq!(engine.swap_model_bytes(&model_io::to_bytes(model_b)), Ok(2));
    let fresh_v3 = engine_over(model_b);
    for (i, q) in queries.iter().enumerate() {
        assert_identical(
            &engine.route(q).unwrap(),
            &fresh_v3.route(q).unwrap(),
            &format!("v3-epoch {i}"),
        );
    }
}

#[test]
fn rejected_swaps_leave_the_old_epoch_serving_unchanged() {
    let (_, model_a, model_b) = fixture();
    let queries = workload(6);
    let engine = engine_over(model_a);
    let before: Vec<RouteResult> = queries.iter().map(|q| engine.route(q).unwrap()).collect();

    // Corrupt snapshot bytes: typed Snapshot rejection.
    let bytes = model_io::to_bytes(model_b);
    let truncated = &bytes[..bytes.len() / 2];
    assert!(matches!(
        engine.swap_model_bytes(truncated),
        Err(SwapError::Snapshot(_))
    ));
    let mut flipped = bytes.to_vec();
    flipped[4] = 99; // version byte
    assert!(matches!(
        engine.swap_model_bytes(&flipped),
        Err(SwapError::Snapshot(_))
    ));

    // In-memory candidates that bypass the decoder: revalidation
    // catches what the decoder would have.
    let mut bad_bins = model_b.clone();
    bad_bins.bins += 1;
    assert_eq!(
        engine.swap_model(bad_bins),
        Err(SwapError::BinsMismatch {
            model: model_b.bins + 1,
            estimator: model_b.bins,
        })
    );
    for bad_eps in [f64::NAN, f64::INFINITY, -0.5] {
        let mut bad_cal = model_b.clone();
        bad_cal.calibration.as_mut().expect("fixture has calibration").margin_eps = bad_eps;
        assert!(
            matches!(engine.swap_model(bad_cal), Err(SwapError::Calibration(_))),
            "margin_eps {bad_eps} must be rejected"
        );
    }
    let mut bad_lip = model_b.clone();
    bad_lip.calibration.as_mut().unwrap().lipschitz = f64::NEG_INFINITY;
    assert!(matches!(engine.swap_model(bad_lip), Err(SwapError::Calibration(_))));

    // Every rejection left epoch 0 serving, bitwise-unchanged.
    assert_eq!(engine.epoch(), 0);
    assert_eq!(engine.stats().epoch, 0);
    for (i, q) in queries.iter().enumerate() {
        assert_identical(&engine.route(q).unwrap(), &before[i], &format!("post-rejection {i}"));
    }

    // The errors render for operators.
    let msg = engine.swap_model_bytes(truncated).unwrap_err().to_string();
    assert!(msg.contains("snapshot"), "unhelpful SwapError display: {msg}");
}

#[test]
fn routes_racing_swaps_are_linearizable_and_drift_free() {
    let (_, model_a, model_b) = fixture();
    let queries = Arc::new(workload(6));
    let fresh_a = engine_over(model_a);
    let fresh_b = engine_over(model_b);
    let ref_a: Arc<Vec<RouteResult>> =
        Arc::new(queries.iter().map(|q| fresh_a.route(q).unwrap()).collect());
    let ref_b: Arc<Vec<RouteResult>> =
        Arc::new(queries.iter().map(|q| fresh_b.route(q).unwrap()).collect());

    let engine = Arc::new(engine_over(model_a));
    let stop = Arc::new(AtomicBool::new(false));
    let routers: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let queries = Arc::clone(&queries);
            let (ref_a, ref_b) = (Arc::clone(&ref_a), Arc::clone(&ref_b));
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rounds = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for (i, r) in engine.route_batch(&queries, 1).iter().enumerate() {
                        let r = r.as_ref().expect("workload queries stay valid");
                        // Linearizability: each answer comes wholly from
                        // one epoch — never a hybrid of two models.
                        assert!(
                            identical(r, &ref_a[i]) || identical(r, &ref_b[i]),
                            "thread {t} round {rounds} query {i}: answer {} matches neither model",
                            r.probability
                        );
                    }
                    rounds += 1;
                }
                rounds
            })
        })
        .collect();

    // A storm of swaps under live traffic: A -> B -> A -> ...
    const SWAPS: u64 = 24;
    for s in 0..SWAPS {
        let next = if s % 2 == 0 { model_b } else { model_a };
        let epoch = engine.swap_model(next.clone()).expect("valid swaps");
        assert_eq!(epoch, s + 1, "every successful swap bumps the epoch by one");
        std::thread::sleep(std::time::Duration::from_millis(3));
    }
    stop.store(true, Ordering::Relaxed);
    let total_rounds: usize = routers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(total_rounds > 0, "routers never completed a round");
    assert_eq!(engine.epoch(), SWAPS);
}

#[test]
fn epoch_counter_is_identity_not_traffic() {
    let (_, model_a, model_b) = fixture();
    let engine = engine_over(model_a);
    let q = workload(1)[0];
    engine.route(&q).unwrap();
    engine.swap_model(model_b.clone()).unwrap();
    engine.route(&q).unwrap();

    let stats = engine.stats();
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.queries, 2, "traffic counters span epochs");

    // reset_stats zeroes traffic but keeps the epoch: it says *which*
    // model is serving, not how much it has served.
    engine.reset_stats();
    let stats = engine.stats();
    assert_eq!(stats.queries, 0);
    assert_eq!(stats.epoch, 1, "reset_stats must not lie about the serving epoch");
    assert_eq!(engine.epoch(), 1);
}
