//! End-to-end integration: synthetic world -> hybrid training -> routing,
//! across all crates through the facade.

use stochastic_routing::core::model::training::{train_hybrid, TrainingConfig};
use stochastic_routing::core::routing::baseline::ExpectedTimeBaseline;
use stochastic_routing::core::routing::{
    BoundMode, BudgetRouter, EngineBuilder, Query, RouterConfig,
};
use stochastic_routing::core::{CombinePolicy, HybridCost};
use stochastic_routing::ml::forest::ForestConfig;
use stochastic_routing::synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};
use std::time::Duration;

fn tiny_training() -> TrainingConfig {
    TrainingConfig {
        train_pairs: 150,
        test_pairs: 50,
        min_obs: 5,
        bins: 10,
        forest: ForestConfig {
            n_trees: 8,
            ..ForestConfig::default()
        },
        ..TrainingConfig::default()
    }
}

#[test]
fn world_to_route_pipeline() {
    let world = SyntheticWorld::build(WorldConfig::tiny());
    let (model, report) = train_hybrid(&world, &tiny_training()).expect("training succeeds");

    // The paper's model-quality claim holds end to end.
    assert!(
        report.kl_hybrid_mean <= report.kl_convolution_mean * 1.1,
        "hybrid {} vs convolution {}",
        report.kl_hybrid_mean,
        report.kl_convolution_mean
    );

    let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
    let engine = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    let mut qg = QueryGenerator::new(123);
    let queries = qg.generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, 6);
    assert!(!queries.is_empty());

    let batch: Vec<Query> = queries.iter().map(Query::from).collect();
    let results = engine.route_batch(&batch, 0);
    for (q, r) in queries.iter().zip(results) {
        let r = r.expect("generated queries are valid");
        let path = r.path.expect("target reachable in an SCC world");
        path.validate(&world.graph).expect("valid path");
        assert_eq!(path.source(), q.source);
        assert_eq!(path.target(), q.target);

        // PBR never does worse than the deterministic baseline.
        let base = ExpectedTimeBaseline::solve(&cost, q.source, q.target, q.budget_s)
            .expect("baseline exists");
        assert!(r.probability >= base.probability - 1e-9);
    }
    let stats = engine.stats();
    assert_eq!(stats.queries, queries.len() as u64);
    assert_eq!(
        stats.bounds_cache_hits + stats.bounds_cache_misses,
        queries.len() as u64
    );
}

#[test]
fn anytime_is_monotone_in_the_limit() {
    let world = SyntheticWorld::build(WorldConfig::tiny());
    let (model, _) = train_hybrid(&world, &tiny_training()).expect("training succeeds");
    let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
    let router = BudgetRouter::new(&cost, RouterConfig::default());
    let mut qg = QueryGenerator::new(5);
    let queries = qg.generate(&world.graph, &world.model, DistanceCategory::OneToFive, 3);

    for q in &queries {
        let p0 = router
            .route(q.source, q.target, q.budget_s, Some(Duration::ZERO))
            .probability;
        let p_inf = router.route(q.source, q.target, q.budget_s, None).probability;
        assert!(p0 <= p_inf + 1e-9, "deadline 0 beat unbounded");
        assert!(p0 > 0.0, "pivot must provide a usable answer");
    }
}

#[test]
fn policies_rank_as_the_paper_predicts() {
    // Measured as mean KL to ground truth over held-out pairs, the hybrid
    // must sit at or below pure convolution; this is E3's claim exercised
    // through the public facade.
    let world = SyntheticWorld::build(WorldConfig::tiny());
    let (_, report) = train_hybrid(&world, &tiny_training()).expect("training succeeds");
    assert!(report.kl_hybrid_mean <= report.kl_convolution_mean * 1.1);
    assert!(report.classifier_accuracy > 0.5);
    assert!((0.4..=0.95).contains(&report.dependent_fraction));
}

#[test]
fn graph_snapshot_round_trips_through_the_facade() {
    let world = SyntheticWorld::build(WorldConfig::tiny());
    let bytes = stochastic_routing::graph::io::to_bytes(&world.graph);
    let g2 = stochastic_routing::graph::io::from_bytes(&bytes).expect("round trip");
    assert_eq!(g2.num_nodes(), world.graph.num_nodes());
    assert_eq!(g2.num_edges(), world.graph.num_edges());
}

#[test]
fn router_stats_reflect_pruning_work() {
    let world = SyntheticWorld::build(WorldConfig::tiny());
    let (model, _) = train_hybrid(&world, &tiny_training()).expect("training succeeds");
    let cost = HybridCost::from_ground_truth(&world, &model, CombinePolicy::Hybrid);
    let mut qg = QueryGenerator::new(9);
    let q = qg.generate(&world.graph, &world.model, DistanceCategory::OneToFive, 1)[0];

    let full = BudgetRouter::new(&cost, RouterConfig::default())
        .route(q.source, q.target, q.budget_s, None);
    assert!(full.stats.completed);
    assert!(full.stats.labels_created > 0);

    let unpruned_cfg = RouterConfig {
        bound: BoundMode::Off,
        max_labels: 30_000,
        ..RouterConfig::default()
    };
    let unpruned =
        BudgetRouter::new(&cost, unpruned_cfg).route(q.source, q.target, q.budget_s, None);
    assert!(
        unpruned.stats.labels_created >= full.stats.labels_created,
        "bound pruning must save work"
    );
}
