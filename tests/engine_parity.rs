//! Engine parity + concurrency certification for the query-serving
//! redesign:
//!
//! * **determinism** — `route_batch` across 1/2/8 worker threads returns
//!   bitwise-identical `RouteResult`s (probabilities compared by bit
//!   pattern, paths, distributions and every counter except wall-clock
//!   `elapsed`) to sequential routing through the deprecated
//!   `BudgetRouter` shim,
//! * **validation** — the typed `Query` API rejects NaN/infinite
//!   budgets, out-of-range node ids and zero anytime deadlines with the
//!   matching `EngineError`, without poisoning the rest of a batch,
//! * **caching** — the target-keyed `OptimisticBounds` cache reports
//!   hits/misses through `EngineStats` and never changes an answer,
//! * **scratch reuse** — a `SearchContext` reused across queries returns
//!   the same answers as fresh contexts and stops growing its arena once
//!   warm (steady-state serving reuses search state instead of
//!   reallocating it),
//! * **stats coherence** — `stats()` racing `reset_stats()` (or any bulk
//!   rewrite) never observes a torn half-zeroed snapshot,
//! * **cache bounds under contention** — many workers hammering a
//!   capacity-clamped bounds cache never overshoot the bound at rest and
//!   never change an answer.

use std::sync::OnceLock;
use std::time::Duration;
use stochastic_routing::core::model::training::{train_hybrid, TrainingConfig};
use stochastic_routing::core::routing::{
    BudgetRouter, EngineBuilder, EngineError, Query, RouteResult, RouterConfig, RoutingEngine,
};
use stochastic_routing::core::{CombinePolicy, HybridCost, HybridModel};
use stochastic_routing::graph::NodeId;
use stochastic_routing::ml::forest::ForestConfig;
use stochastic_routing::synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};

fn fixture() -> &'static (SyntheticWorld, HybridModel) {
    static FIX: OnceLock<(SyntheticWorld, HybridModel)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let cfg = TrainingConfig {
            train_pairs: 120,
            test_pairs: 40,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(&world, &cfg).expect("fixture trains");
        (world, model)
    })
}

fn cost() -> HybridCost {
    let (world, model) = fixture();
    HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid)
}

/// A workload with deliberately repeated targets so the bounds cache has
/// something to hit.
fn workload(n: usize) -> Vec<Query> {
    let (world, _) = fixture();
    let mut qg = QueryGenerator::new(0xEB);
    let mut queries: Vec<Query> = qg
        .generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, n)
        .iter()
        .map(Query::from)
        .collect();
    // Duplicate every query with a perturbed budget: same target, new
    // budget — a cache hit that must not change any answer.
    let dup: Vec<Query> = queries
        .iter()
        .map(|q| Query::new(q.source, q.target, q.budget_s * 1.01))
        .collect();
    queries.extend(dup);
    queries
}

/// Full bitwise comparison, ignoring only the wall-clock field.
fn assert_identical(a: &RouteResult, b: &RouteResult, what: &str) {
    assert_eq!(
        a.probability.to_bits(),
        b.probability.to_bits(),
        "{what}: probability differs: {} vs {}",
        a.probability,
        b.probability
    );
    let path_a = a.path.as_ref().map(|p| (&p.nodes, &p.edges));
    let path_b = b.path.as_ref().map(|p| (&p.nodes, &p.edges));
    assert_eq!(path_a, path_b, "{what}: path differs");
    assert_eq!(a.distribution, b.distribution, "{what}: distribution differs");
    let (sa, sb) = (a.stats, b.stats);
    assert_eq!(
        (sa.labels_created, sa.labels_expanded, sa.pruned_bound, sa.pruned_infeasible),
        (sb.labels_created, sb.labels_expanded, sb.pruned_bound, sb.pruned_infeasible),
        "{what}: work counters differ"
    );
    assert_eq!(
        (sa.pruned_dominance, sa.dominance_retired, sa.pareto_compactions, sa.completed),
        (sb.pruned_dominance, sb.dominance_retired, sb.pareto_compactions, sb.completed),
        "{what}: dominance counters differ"
    );
}

#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RoutingEngine>();
    assert_send_sync::<Query>();
    assert_send_sync::<EngineError>();
}

#[test]
fn route_batch_is_deterministic_across_worker_counts() {
    let cost = cost();
    let queries = workload(8);

    // The sequential reference goes through the deprecated shim — the
    // parity contract that lets existing callers migrate fearlessly.
    let shim = BudgetRouter::new(&cost, RouterConfig::default());
    let reference: Vec<RouteResult> = queries
        .iter()
        .map(|q| shim.route(q.source, q.target, q.budget_s, None))
        .collect();

    for workers in [1usize, 2, 8] {
        let engine = EngineBuilder::new(cost.clone())
            .config(RouterConfig::default())
            .build();
        let results = engine.route_batch(&queries, workers);
        assert_eq!(results.len(), queries.len());
        for (i, (r, expected)) in results.iter().zip(&reference).enumerate() {
            let r = r.as_ref().expect("workload queries are valid");
            assert_identical(r, expected, &format!("query {i} with {workers} worker(s)"));
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, queries.len() as u64);
        assert_eq!(stats.batches, 1);
    }
}

#[test]
fn invalid_queries_are_rejected_with_typed_errors() {
    let engine = EngineBuilder::new(cost()).build();
    let n = engine.cost().graph().num_nodes();
    let valid = workload(1)[0];

    let nan = Query::new(valid.source, valid.target, f64::NAN);
    match engine.route(&nan) {
        // NaN != NaN, so match the variant and check the payload's bits.
        Err(EngineError::InvalidBudget { budget }) => assert!(budget.is_nan()),
        other => panic!("NaN budget produced {other:?}"),
    }

    let inf = Query::new(valid.source, valid.target, f64::INFINITY);
    assert!(matches!(
        engine.route(&inf),
        Err(EngineError::InvalidBudget { .. })
    ));

    let bogus = Query::new(valid.source, NodeId(n as u32 + 7), 100.0);
    assert_eq!(
        engine.route(&bogus).unwrap_err(),
        EngineError::NodeOutOfRange {
            node: NodeId(n as u32 + 7),
            num_nodes: n
        }
    );

    let zero = valid.with_deadline(Duration::ZERO);
    assert_eq!(engine.route(&zero).unwrap_err(), EngineError::ZeroDeadline);

    // Negative budgets used to slip past validation (only NaN/∞ were
    // checked) and silently return the degenerate probability-0 result.
    // The typed API now rejects them like any other meaningless budget.
    let late = Query::new(valid.source, valid.target, -5.0);
    assert_eq!(
        engine.route(&late).unwrap_err(),
        EngineError::InvalidBudget { budget: -5.0 }
    );

    // A bad query inside a batch rejects alone; its neighbours route.
    let batch = [valid, bogus, late];
    let results = engine.route_batch(&batch, 2);
    assert!(results[0].is_ok());
    assert!(matches!(
        results[1],
        Err(EngineError::NodeOutOfRange { .. })
    ));
    assert!(matches!(results[2], Err(EngineError::InvalidBudget { .. })));

    // Error values render for operators.
    let msg = engine.route(&zero).unwrap_err().to_string();
    assert!(msg.contains("deadline"), "unhelpful error display: {msg}");
}

#[test]
fn warm_bounds_cache_counts_hits_and_preserves_answers() {
    let cost = cost();
    let engine = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    let queries = workload(6);
    let distinct_targets = {
        let mut t: Vec<NodeId> = queries.iter().map(|q| q.target).collect();
        t.sort_unstable();
        t.dedup();
        t.len()
    };

    // Cold pass: every distinct target misses exactly once.
    let cold = engine.route_batch(&queries, 1);
    let s1 = engine.stats();
    assert_eq!(s1.bounds_cache_misses, distinct_targets as u64);
    assert_eq!(
        s1.bounds_cache_hits,
        queries.len() as u64 - distinct_targets as u64
    );
    assert_eq!(engine.bounds_cached(), distinct_targets);

    // Warm pass: all hits, bitwise-identical answers.
    let warm = engine.route_batch(&queries, 1);
    let s2 = engine.stats();
    assert_eq!(s2.bounds_cache_misses, s1.bounds_cache_misses, "warm pass recomputed bounds");
    assert_eq!(
        s2.bounds_cache_hits,
        s1.bounds_cache_hits + queries.len() as u64
    );
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_identical(
            c.as_ref().unwrap(),
            w.as_ref().unwrap(),
            &format!("query {i} cold vs warm"),
        );
    }

    // Clearing the cache restores cold behaviour (and still the same
    // answers).
    engine.clear_bounds_cache();
    assert_eq!(engine.bounds_cached(), 0);
    let recold = engine.route_batch(&queries, 1);
    let s3 = engine.stats();
    assert_eq!(
        s3.bounds_cache_misses,
        s2.bounds_cache_misses + distinct_targets as u64
    );
    for (i, (c, r)) in cold.iter().zip(&recold).enumerate() {
        assert_identical(
            c.as_ref().unwrap(),
            r.as_ref().unwrap(),
            &format!("query {i} cold vs re-cold"),
        );
    }

    // reset_stats zeroes counters without dropping the cache.
    engine.reset_stats();
    assert_eq!(engine.stats(), Default::default());
    assert_eq!(engine.bounds_cached(), distinct_targets);
}

#[test]
fn search_context_reuse_is_answer_preserving_and_stops_allocating() {
    let engine = EngineBuilder::new(cost())
        .config(RouterConfig::default())
        .build();
    let queries = workload(6);

    let mut shared = engine.new_context();
    let mut capacities = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let reused = engine.route_with(q, &mut shared).unwrap();
        let fresh = engine.route(q).unwrap();
        assert_identical(&reused, &fresh, &format!("query {i} shared vs fresh ctx"));
        capacities.push(shared.arena_capacity());
    }
    // Steady state: replaying the workload through the warm context must
    // not grow the label arena again — the scratch is reused, not
    // reallocated per query.
    let warm_capacity = shared.arena_capacity();
    for q in &queries {
        engine.route_with(q, &mut shared).unwrap();
        assert_eq!(
            shared.arena_capacity(),
            warm_capacity,
            "warm context reallocated its arena"
        );
    }
}

#[test]
fn lru_bounded_cache_evicts_but_never_changes_answers() {
    let cost = cost();
    let queries = workload(8);
    let distinct_targets = {
        let mut t: Vec<NodeId> = queries.iter().map(|q| q.target).collect();
        t.sort_unstable();
        t.dedup();
        t.len()
    };
    assert!(distinct_targets > 2, "workload needs target diversity");

    // Reference: an engine whose cache comfortably holds every target.
    let unbounded = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    let reference = unbounded.route_batch(&queries, 1);
    assert_eq!(unbounded.stats().bounds_evictions, 0);

    // A capacity of 2 forces evictions on the same workload.
    let bounded = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .bounds_cache_capacity(2)
        .build();
    let results = bounded.route_batch(&queries, 1);
    let stats = bounded.stats();
    assert!(bounded.bounds_cached() <= 2, "capacity not enforced");
    assert!(
        stats.bounds_evictions >= (distinct_targets - 2) as u64,
        "expected evictions past capacity, saw {}",
        stats.bounds_evictions
    );
    // Eviction costs recomputation, never correctness.
    for (i, (r, expected)) in results.iter().zip(&reference).enumerate() {
        assert_identical(
            r.as_ref().unwrap(),
            expected.as_ref().unwrap(),
            &format!("query {i} bounded vs unbounded cache"),
        );
    }

    // An LRU round trip: re-routing the workload in order re-misses
    // evicted targets (the cache is a capacity bound, not a correctness
    // device).
    let miss_before = stats.bounds_cache_misses;
    bounded.route_batch(&queries, 1);
    assert!(bounded.stats().bounds_cache_misses > miss_before);

    // Capacity zero clamps to one instead of disabling the engine.
    let tiny = EngineBuilder::new(cost)
        .config(RouterConfig::default())
        .bounds_cache_capacity(0)
        .build();
    let clamped = tiny.route_batch(&queries, 1);
    assert!(tiny.bounds_cached() <= 1);
    for (i, (r, expected)) in clamped.iter().zip(&reference).enumerate() {
        assert_identical(
            r.as_ref().unwrap(),
            expected.as_ref().unwrap(),
            &format!("query {i} capacity-1 cache"),
        );
    }
}

#[test]
fn shared_lattice_fast_path_fires_and_preserves_routes() {
    use stochastic_routing::dist::Histogram;

    let (world, model) = fixture();
    // Snap every edge marginal onto one canonical lattice: width 2.0,
    // start an integer multiple of it. Pre-cap combines (path-so-far ⊛
    // next marginal at matching widths) then share a lattice, which the
    // engine must detect and count — without changing a single route.
    let marginals: Vec<Histogram> = world
        .graph
        .edge_ids()
        .map(|e| {
            let m = world.ground_truth.marginal(e);
            Histogram::new((m.start() / 2.0).round() * 2.0, 2.0, m.probs().to_vec())
                .expect("snapped marginal is valid")
        })
        .collect();
    let cost = HybridCost::new(
        &world.graph,
        model,
        marginals,
        CombinePolicy::AlwaysConvolve,
    );

    let shim = BudgetRouter::new(&cost, RouterConfig::default());
    let engine = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    for (i, q) in workload(6).iter().enumerate() {
        let expected = shim.route(q.source, q.target, q.budget_s, None);
        let got = engine.route(q).expect("workload queries are valid");
        assert_identical(&got, &expected, &format!("query {i} on the snapped lattice"));
    }
    assert!(
        engine.stats().lattice_fast_path > 0,
        "no combine hit the shared-lattice route on a single-lattice world"
    );
}

#[test]
fn zero_budget_is_valid_and_takes_the_degenerate_path() {
    // A budget of exactly 0.0 is finite and answerable (probability 0),
    // so validation admits it — but the search must not burn a full
    // exploration to conclude that: `route_inner`'s degenerate path now
    // covers non-positive budgets, matching its long-standing comment.
    let engine = EngineBuilder::new(cost())
        .config(RouterConfig::default())
        .build();
    let q = workload(1)[0];

    let r = engine
        .route(&Query::new(q.source, q.target, 0.0))
        .expect("zero budgets are answerable");
    assert_eq!(r.probability, 0.0);
    assert!(r.stats.completed);
    // The degenerate path answers without searching: the expected-time
    // path is attached, but no label was ever created or expanded.
    assert!(r.path.is_some(), "expected-time path attached");
    assert_eq!(r.stats.labels_created, 0, "zero budget ran the full search");
    assert_eq!(r.stats.labels_expanded, 0);
}

#[test]
fn shim_preserves_legacy_degenerate_budget_semantics() {
    // The deprecated BudgetRouter keeps answering NaN/∞/negative budgets
    // with a probability-0 result (its documented legacy contract), even
    // though the typed engine API now rejects the same budgets.
    let cost = cost();
    let shim = BudgetRouter::new(&cost, RouterConfig::default());
    let engine = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    let q = workload(1)[0];
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -5.0] {
        let r = shim.route(q.source, q.target, bad, None);
        assert_eq!(r.probability, 0.0, "shim budget {bad}");
        assert!(r.stats.completed);
        assert!(r.path.is_some(), "shim still attaches the usable path");
        assert_eq!(r.stats.labels_created, 0, "degenerate budgets never search");
        assert!(
            matches!(
                engine.route(&Query::new(q.source, q.target, bad)),
                Err(EngineError::InvalidBudget { .. })
            ),
            "engine must reject budget {bad}"
        );
    }
}

#[test]
fn panicking_query_is_contained_and_engine_stays_serviceable() {
    let cost = cost();
    let queries = workload(6);
    let victim = queries[2];

    // Reference answers from a healthy engine.
    let healthy = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    let reference = healthy.route_batch(&queries, 1);

    // A rigged engine panics mid-search on the victim query (fault
    // injection fires after seeding, with pooled payloads live in the
    // arena — realistic wreckage, not a tidy early return).
    let rigged = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .panic_on_query(victim.source, victim.target)
        .build();

    for workers in [1usize, 4] {
        let results = rigged.route_batch(&queries, workers);
        for (i, (r, expected)) in results.iter().zip(&reference).enumerate() {
            let q = &queries[i];
            if q.source == victim.source && q.target == victim.target {
                assert_eq!(
                    r.as_ref().unwrap_err(),
                    &EngineError::Internal,
                    "victim query must surface the contained panic"
                );
            } else {
                assert_identical(
                    r.as_ref().expect("non-victim queries route"),
                    expected.as_ref().unwrap(),
                    &format!("query {i} after a contained panic ({workers} workers)"),
                );
            }
        }
    }
    assert!(rigged.stats().panics >= 2, "contained panics are counted");

    // Sequential single-query serving recovers the same way: the panic
    // is one Err, and the very next route call answers bit-for-bit.
    assert_eq!(rigged.route(&victim).unwrap_err(), EngineError::Internal);
    let after = rigged.route(&queries[0]).expect("engine stays serviceable");
    assert_identical(
        &after,
        reference[0].as_ref().unwrap(),
        "first query after a contained panic",
    );
    // The error renders for operators.
    let msg = EngineError::Internal.to_string();
    assert!(msg.contains("panicked"), "unhelpful Internal display: {msg}");
}

#[test]
fn poisoned_locks_do_not_take_down_serving() {
    // A panic while holding the context-pool Mutex or the bounds-cache
    // RwLock used to poison it forever — every later route() call would
    // then panic in checkout_context. The accessors are now
    // poison-tolerant: serving proceeds as if nothing happened.
    let engine = EngineBuilder::new(cost())
        .config(RouterConfig::default())
        .build();
    let queries = workload(4);
    let before = engine.route_batch(&queries, 1);

    engine.poison_locks_for_tests();

    // Every lock-touching surface still works...
    let _ = engine.pooled_contexts();
    let _ = engine.bounds_cached();
    engine.clear_bounds_cache();
    // ...and answers are unchanged.
    let after = engine.route_batch(&queries, 2);
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert_identical(
            b.as_ref().unwrap(),
            a.as_ref().unwrap(),
            &format!("query {i} across lock poisoning"),
        );
    }
}

#[test]
fn stats_snapshot_is_never_torn_by_a_concurrent_rewrite() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // The engine's own scrape path (`/metrics` calls `stats()`) races a
    // bulk rewrite. Before the seqlock, a scrape could catch `reset`
    // half-done: some counters zeroed, others not — a torn snapshot
    // with nonsense hit rates. Pin the contract: every observed
    // snapshot has all twelve traffic counters from one side of the
    // rewrite, never a mix.
    let engine = Arc::new(EngineBuilder::new(cost()).build());
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut v = 1u64;
            while !stop.load(Ordering::Relaxed) {
                engine.stats_handle().fill_for_tests(v);
                v += 1;
            }
            v
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = engine.stats();
                    let fields = [
                        s.queries,
                        s.batches,
                        s.bounds_cache_hits,
                        s.bounds_cache_misses,
                        s.bounds_evictions,
                        s.labels_created,
                        s.labels_expanded,
                        s.incomplete,
                        s.pool_reuse,
                        s.pool_misses,
                        s.lattice_fast_path,
                        s.panics,
                    ];
                    assert!(
                        fields.iter().all(|&f| f == fields[0]),
                        "torn snapshot: {fields:?}"
                    );
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let rewrites = writer.join().unwrap();
    let scrapes: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(rewrites > 10, "writer barely ran ({rewrites} rewrites)");
    assert!(scrapes > 10, "readers barely ran ({scrapes} scrapes)");

    // And `reset` itself participates in the same protocol: post-reset
    // snapshots are all-zero traffic (epoch preserved separately).
    engine.reset_stats();
    assert_eq!(engine.stats(), Default::default());
}

#[test]
fn contended_bounds_cache_never_overshoots_capacity_or_changes_answers() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // Many workers, a cache clamped to 2 targets, a workload with far
    // more distinct targets: the old contains_key-then-insert path let
    // N workers all miss the same full cache and push it N-1 entries
    // past its bound. The insert-then-trim rewrite makes overshoot
    // impossible to observe at rest; an observer thread hammers the
    // accessor the whole time.
    let queries = workload(10);
    let reference = EngineBuilder::new(cost())
        .config(RouterConfig::default())
        .build()
        .route_batch(&queries, 1);

    let engine = Arc::new(
        EngineBuilder::new(cost())
            .config(RouterConfig::default())
            .bounds_cache_capacity(2)
            .build(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let observer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak = 0usize;
            while !stop.load(Ordering::Relaxed) {
                peak = peak.max(engine.bounds_cached());
            }
            peak
        })
    };

    for round in 0..6 {
        let results = engine.route_batch(&queries, 8);
        for (i, (r, expected)) in results.iter().zip(&reference).enumerate() {
            assert_identical(
                r.as_ref().unwrap(),
                expected.as_ref().unwrap(),
                &format!("round {round} query {i} under contention"),
            );
        }
        assert!(
            engine.bounds_cached() <= 2,
            "cache overshot its capacity at rest after round {round}"
        );
    }
    stop.store(true, Ordering::Relaxed);
    // Insert and trim happen under one write-lock hold, so not even a
    // mid-flight read can catch the cache past its bound.
    let peak = observer.join().unwrap();
    assert!(peak <= 2, "observer saw {peak} cached targets in a capacity-2 cache");
    assert!(
        engine.stats().bounds_evictions > 0,
        "workload never exercised eviction"
    );
}

#[test]
fn shim_and_engine_agree_on_anytime_queries() {
    let cost = cost();
    let shim = BudgetRouter::new(&cost, RouterConfig::default());
    let engine = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    let q = workload(1)[0];
    // Unbounded: exact parity (deterministic search).
    let a = shim.route(q.source, q.target, q.budget_s, None);
    let b = engine.route(&q).unwrap();
    assert_identical(&a, &b, "unbounded anytime query");
    // With a generous deadline the search completes and parity holds.
    let deadline = Duration::from_secs(60);
    let c = shim.route(q.source, q.target, q.budget_s, Some(deadline));
    let d = engine.route(&q.with_deadline(deadline)).unwrap();
    assert!(c.stats.completed && d.stats.completed);
    assert_identical(&c, &d, "deadlined anytime query");
}
