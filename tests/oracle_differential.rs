//! Differential certification of the pruning policies against the
//! exhaustive [`OracleRouter`]: on a **scenario matrix** of small
//! synthetic worlds — dense/wide grids, a hub-and-spoke wheel, and a
//! heavy-tailed-congestion grid — a *sound* pruning configuration must
//! reproduce the oracle's probability exactly, and margin dominance must
//! stay within its calibrated `eps`. Every routed probe goes through the
//! production [`RoutingEngine`] API (one engine per configuration), so
//! the suite certifies the serving surface end to end — typed queries,
//! per-target bound caching and all.
//!
//! Per topology the matrix covers every termination-safe combination of
//! the three composable pruning policies — bound {off, certified,
//! certified-envelope} × budget-gate {on, off} × dominance {off,
//! convolution-gated, margin} — additionally crossed with the pivot and
//! cost-shifting toggles, under both the hybrid cost model and the
//! pure-convolution model (where the optimistic bound is exact too). The
//! one excluded corner is bound-off × gate-off: with neither policy the
//! search has no feasibility cut and diverges on cyclic graphs by
//! construction. A mismatch is reported *minimized*: the failing
//! configuration is greedily shrunk to the smallest set of enabled
//! policies that still disagrees with the oracle.
//!
//! The suite also regression-pins the *known* unsoundness it once found:
//! the legacy optimistic CDF bound drifts (~3.5e-3) under the hybrid's
//! learned estimator arm, while [`BoundMode::CertifiedEnvelope`] — the
//! support-aware replacement and current default — stays exact on the
//! same seeded queries.

use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::OnceLock;
use stochastic_routing::core::model::training::{train_hybrid, TrainingConfig};
use stochastic_routing::core::routing::{
    BoundMode, ConvCertificate, DominanceMode, EngineBuilder, OracleRouter, Query, RouteResult,
    RouterConfig, RoutingEngine,
};
use stochastic_routing::core::{CombinePolicy, HybridCost, HybridModel};
use stochastic_routing::graph::NodeId;
use stochastic_routing::ml::forest::ForestConfig;
use stochastic_routing::synth::{
    CongestionConfig, GroundTruthConfig, NetworkConfig, SyntheticWorld, Topology,
    TrajectoryConfig, WorldConfig,
};

/// Oracle enumeration budget per query; queries whose walk space exceeds
/// it are skipped (counted, so a pathological fixture would fail loudly).
const ORACLE_CAP: usize = 25_000;

/// One synthetic topology of the scenario matrix, with its trained model.
struct Scenario {
    /// Topology label, for failure reports.
    name: &'static str,
    world: SyntheticWorld,
    model: HybridModel,
}

/// Trains the standard small-world model on `world`.
fn train_scenario(name: &'static str, world: SyntheticWorld, seed: u64) -> Scenario {
    let cfg = TrainingConfig {
        train_pairs: 60,
        test_pairs: 20,
        min_obs: 3,
        bins: 8,
        forest: ForestConfig {
            n_trees: 4,
            ..ForestConfig::default()
        },
        seed: seed ^ 0xD1FF,
        ..TrainingConfig::default()
    };
    let (model, _) = train_hybrid(&world, &cfg).expect("scenario world trains");
    Scenario { name, world, model }
}

/// Shared observation/sampling knobs: enough data to train, cheap to
/// simulate.
fn scenario_world(network: NetworkConfig, congestion: CongestionConfig) -> SyntheticWorld {
    SyntheticWorld::build(WorldConfig {
        network,
        congestion,
        trajectories: TrajectoryConfig {
            num_trips: 150,
            num_sources: 8,
            ..TrajectoryConfig::default()
        },
        ground_truth: GroundTruthConfig {
            samples_per_edge: 150,
            samples_per_pair: 150,
            ..GroundTruthConfig::default()
        },
    })
}

/// Small grids: a handful of intersections so exhaustive enumeration
/// stays cheap, but with cycles, parallel routes and ties so the pruning
/// corner cases (U-turn exchanges, Pareto ties) actually occur.
fn grid_scenario(name: &'static str, seed: u64, width: usize, height: usize) -> Scenario {
    let world = scenario_world(
        NetworkConfig {
            width,
            height,
            thinning: 0.0,
            seed,
            ..NetworkConfig::default()
        },
        CongestionConfig::default(),
    );
    train_scenario(name, world, seed)
}

/// Hub-and-spoke wheel: few route choices near the centre, orbital
/// detours outside — the opposite routing pressure of a grid.
fn hub_and_spoke_scenario() -> Scenario {
    let world = scenario_world(
        NetworkConfig {
            topology: Topology::HubAndSpoke {
                hubs: 3,
                spokes: 2,
                spoke_len: 2,
            },
            thinning: 0.0,
            seed: 31,
            ..NetworkConfig::default()
        },
        CongestionConfig::default(),
    );
    train_scenario("hub-and-spoke", world, 31)
}

/// Heavy-tailed congestion on a small grid: the widest label supports
/// and the most front-loadable estimator shapes — the regime that
/// stresses the certified-envelope bound hardest.
fn heavy_tail_scenario() -> Scenario {
    let world = scenario_world(
        NetworkConfig {
            width: 3,
            height: 4,
            thinning: 0.0,
            seed: 47,
            ..NetworkConfig::default()
        },
        CongestionConfig::heavy_tailed(),
    );
    train_scenario("heavy-tail-grid", world, 47)
}

/// Number of scenarios in the matrix (the proptest index range).
const NUM_SCENARIOS: usize = 4;

fn fixtures() -> &'static [Scenario] {
    static FIX: OnceLock<Vec<Scenario>> = OnceLock::new();
    FIX.get_or_init(|| {
        let all = vec![
            grid_scenario("grid-dense", 11, 4, 3),
            grid_scenario("grid-wide", 23, 3, 4),
            hub_and_spoke_scenario(),
            heavy_tail_scenario(),
        ];
        assert_eq!(all.len(), NUM_SCENARIOS);
        all
    })
}

/// Convolution certificates, one per (fixture, combine policy): they
/// depend only on the cost oracle, so compute each exactly once for the
/// whole suite.
fn certificate_for(w: usize, combine: CombinePolicy) -> &'static ConvCertificate {
    static CERTS: OnceLock<Vec<[ConvCertificate; 2]>> = OnceLock::new();
    let all = CERTS.get_or_init(|| {
        fixtures()
            .iter()
            .map(|sc| {
                [CombinePolicy::Hybrid, CombinePolicy::AlwaysConvolve].map(|p| {
                    ConvCertificate::compute(&HybridCost::from_ground_truth(&sc.world, &sc.model, p))
                })
            })
            .collect()
    });
    match combine {
        CombinePolicy::Hybrid => &all[w][0],
        CombinePolicy::AlwaysConvolve => &all[w][1],
        CombinePolicy::AlwaysEstimate => unreachable!("suite never runs the estimator-only model"),
    }
}

/// Routes one query through the production query-serving surface — a
/// [`RoutingEngine`] built for `cfg` — so the whole scenario matrix
/// certifies the engine itself (the deprecated `BudgetRouter` shim is a
/// thin delegate to the same search; its parity is pinned separately in
/// `tests/engine_parity.rs`). A precomputed certificate is cloned in
/// when the configuration consumes one.
fn engine_route(
    cost: &stochastic_routing::core::HybridCost,
    cfg: RouterConfig,
    certificate: Option<&ConvCertificate>,
    src: NodeId,
    dst: NodeId,
    budget: f64,
) -> RouteResult {
    let mut builder = EngineBuilder::new(cost.clone()).config(cfg);
    if RoutingEngine::wants_certificate(&cfg) {
        if let Some(c) = certificate {
            builder = builder.certificate(c.clone());
        }
    }
    builder
        .build()
        .route(&Query::new(src, dst, budget))
        .expect("matrix queries are valid")
}

/// Every termination-safe combination of the bound and budget-gate
/// policies (the bound uses its sound modes when on — `Certified` and
/// the support-aware `CertifiedEnvelope` default; gate-off requires the
/// bound on, since without either the search has no feasibility cut),
/// crossed with the pivot and cost-shifting toggles. Dominance is
/// crossed in by the caller.
fn policy_combinations() -> Vec<RouterConfig> {
    let mut out = Vec::new();
    for (bound, gate) in [
        (BoundMode::Off, true),
        (BoundMode::Certified, true),
        (BoundMode::Certified, false),
        (BoundMode::CertifiedEnvelope, true),
        (BoundMode::CertifiedEnvelope, false),
    ] {
        for pivot in [false, true] {
            for shifting in [false, true] {
                out.push(RouterConfig {
                    bound,
                    budget_gate: gate,
                    use_pivot_init: pivot,
                    use_cost_shifting: shifting,
                    ..RouterConfig::default()
                });
            }
        }
    }
    out
}

/// The drift each dominance mode is allowed against the oracle:
/// `(below, above)` — sound modes are exact, margin may trail by its
/// calibrated `eps`.
fn tolerances(dominance: DominanceMode, eps: f64) -> (f64, f64) {
    match dominance {
        DominanceMode::Margin { .. } => (eps + 1e-9, 1e-9),
        _ => (1e-9, 1e-9),
    }
}

/// Greedily shrinks a failing configuration to a minimal one that still
/// mismatches the oracle (each candidate judged under *its own* mode's
/// tolerance), and renders the repro report.
#[allow(clippy::too_many_arguments)]
fn minimized_failure(
    cost: &HybridCost,
    cfg: RouterConfig,
    src: NodeId,
    dst: NodeId,
    budget: f64,
    oracle_prob: f64,
    eps: f64,
    context: &str,
) -> String {
    let mismatches = |c: &RouterConfig| {
        let (tol_lo, tol_hi) = tolerances(c.dominance, eps);
        let r = engine_route(cost, *c, None, src, dst, budget);
        let o = OracleRouter::from_config(cost, c)
            .route(src, dst, budget, ORACLE_CAP)
            .map(|o| o.probability)
            .unwrap_or(oracle_prob);
        r.probability - o > tol_hi || o - r.probability > tol_lo
    };
    let mut min_cfg = cfg;
    loop {
        let mut shrunk = false;
        let candidates = [
            RouterConfig {
                bound: BoundMode::Off,
                // Never shrink into the divergent bound-off × gate-off
                // corner: restore the feasibility cut with the bound gone.
                budget_gate: true,
                ..min_cfg
            },
            RouterConfig {
                use_pivot_init: false,
                ..min_cfg
            },
            RouterConfig {
                dominance: DominanceMode::Off,
                ..min_cfg
            },
            RouterConfig {
                use_cost_shifting: true, // the default representation
                ..min_cfg
            },
        ];
        for cand in candidates {
            if cand != min_cfg && mismatches(&cand) {
                min_cfg = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    let r = engine_route(cost, min_cfg, None, src, dst, budget);
    format!(
        "{context}: {src:?}->{dst:?} budget {budget:.3}\n\
         full config: {cfg:?}\n\
         minimized config still failing: {min_cfg:?}\n\
         router prob {:.12} (path {:?})\n\
         oracle prob {oracle_prob:.12}",
        r.probability,
        r.path.map(|p| p.edges.len()),
    )
}

/// Runs one query through the full policy matrix, asserting each
/// dominance mode's contract against the oracle. `w` indexes the
/// fixture (for the shared certificate cache).
fn certify_query(
    w: usize,
    combine: CombinePolicy,
    src: NodeId,
    dst: NodeId,
    budget: f64,
) -> Result<usize, TestCaseError> {
    let sc = &fixtures()[w];
    let cost = HybridCost::from_ground_truth(&sc.world, &sc.model, combine);
    let eps = sc
        .model
        .calibration
        .map(|c| c.margin_eps)
        .unwrap_or(f64::INFINITY);
    let mut certified = 0usize;

    // The oracle depends only on the pivot semantics (and the shared
    // bucket cap), not on the pruning toggles: enumerate once per pivot
    // setting and reuse across the whole matrix.
    let mut oracles = [0.0f64; 2];
    for (i, pivot) in [false, true].into_iter().enumerate() {
        let cfg = RouterConfig {
            use_pivot_init: pivot,
            ..RouterConfig::default()
        };
        match OracleRouter::from_config(&cost, &cfg).route(src, dst, budget, ORACLE_CAP) {
            Some(o) => oracles[i] = o.probability,
            None => return Ok(0), // walk space too large; skip the query
        }
    }

    // The convolution certificate depends only on the cost oracle:
    // computed once per (fixture, policy) and shared across the suite.
    let certificate = certificate_for(w, combine);

    for base in policy_combinations() {
        let oracle_prob = oracles[usize::from(base.use_pivot_init)];

        for dominance in [
            DominanceMode::Off,
            DominanceMode::ConvGated,
            DominanceMode::Margin { eps: None },
        ] {
            let cfg = RouterConfig { dominance, ..base };
            let r = engine_route(&cost, cfg, Some(certificate), src, dst, budget);
            prop_assert!(
                r.stats.completed,
                "search did not finish: {cfg:?} on {src:?}->{dst:?}"
            );
            // Sound modes: exact. Margin: never above the oracle, below
            // by at most the calibrated eps.
            let (tol_lo, tol_hi) = tolerances(dominance, eps);
            let diff = r.probability - oracle_prob;
            if diff > tol_hi || -diff > tol_lo {
                let context = format!(
                    "{} under the {}",
                    sc.name,
                    match combine {
                        CombinePolicy::Hybrid => "hybrid cost model",
                        CombinePolicy::AlwaysConvolve => "convolution cost model",
                        CombinePolicy::AlwaysEstimate => "estimator cost model",
                    }
                );
                let report =
                    minimized_failure(&cost, cfg, src, dst, budget, oracle_prob, eps, &context);
                prop_assert!(false, "pruning changed the policy\n{report}");
            }
            certified += 1;
        }
    }
    Ok(certified)
}

/// Draws a routable query on fixture `w`: budget `mult ×` the expected
/// shortest time.
fn make_query(
    world: &SyntheticWorld,
    model: &HybridModel,
    s: u32,
    d: u32,
    mult: f64,
) -> Option<(NodeId, NodeId, f64)> {
    let n = world.graph.num_nodes() as u32;
    let (src, dst) = (NodeId(s % n), NodeId(d % n));
    if src == dst {
        return None;
    }
    let cost = HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid);
    let exp = stochastic_routing::graph::algo::dijkstra(&world.graph, src, Some(dst), |e| {
        cost.marginal(e).mean()
    })
    .distance(dst);
    if !exp.is_finite() {
        return None;
    }
    Some((src, dst, exp * mult))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Hybrid cost model: every sound pruning combination matches the
    /// oracle exactly on every topology; margin dominance stays within
    /// its calibrated eps.
    #[test]
    fn pruning_matches_the_oracle_under_hybrid(
        w in 0usize..NUM_SCENARIOS, s in 0u32..64, d in 0u32..64, mult in 0.95f64..1.15
    ) {
        let sc = &fixtures()[w];
        let Some((src, dst, budget)) = make_query(&sc.world, &sc.model, s, d, mult) else {
            return Ok(());
        };
        certify_query(w, CombinePolicy::Hybrid, src, dst, budget)?;
    }

    /// Pure convolution: the cost model is monotone, so the legacy
    /// optimistic bound is exact as well — certify the matrix with it in
    /// place of the certified bound, plus the gated/margin modes (which
    /// both reduce to exchange-safe first-order dominance here).
    #[test]
    fn pruning_matches_the_oracle_under_convolution(
        w in 0usize..NUM_SCENARIOS, s in 0u32..64, d in 0u32..64, mult in 0.95f64..1.15
    ) {
        let sc = &fixtures()[w];
        let Some((src, dst, budget)) = make_query(&sc.world, &sc.model, s, d, mult) else {
            return Ok(());
        };
        certify_query(w, CombinePolicy::AlwaysConvolve, src, dst, budget)?;

        // The optimistic bound, exact under convolution.
        let cost =
            HybridCost::from_ground_truth(&sc.world, &sc.model, CombinePolicy::AlwaysConvolve);
        let cfg = RouterConfig {
            bound: BoundMode::Optimistic,
            dominance: DominanceMode::ConvGated,
            ..RouterConfig::default()
        };
        if let Some(o) = OracleRouter::from_config(&cost, &cfg).route(src, dst, budget, ORACLE_CAP) {
            let r = engine_route(&cost, cfg, Some(certificate_for(w, CombinePolicy::AlwaysConvolve)), src, dst, budget);
            prop_assert!(
                (r.probability - o.probability).abs() < 1e-9,
                "optimistic bound drifted under convolution: {} vs {}",
                r.probability, o.probability
            );
        }
    }

    /// The budget gate alone never changes an answer (it only drops
    /// zero-probability labels), with or without the certified bound.
    #[test]
    fn budget_gate_is_invisible_in_answers(
        w in 0usize..NUM_SCENARIOS, s in 0u32..64, d in 0u32..64, mult in 0.95f64..1.1
    ) {
        let sc = &fixtures()[w];
        let Some((src, dst, budget)) = make_query(&sc.world, &sc.model, s, d, mult) else {
            return Ok(());
        };
        let cost = HybridCost::from_ground_truth(&sc.world, &sc.model, CombinePolicy::Hybrid);
        // Gate off requires the bound on for termination (the bound
        // subsumes the feasibility cut at incumbent probability zero).
        for bound in [BoundMode::CertifiedEnvelope, BoundMode::Certified, BoundMode::Optimistic] {
            let with_gate = RouterConfig {
                bound,
                dominance: DominanceMode::Off,
                budget_gate: true,
                ..RouterConfig::default()
            };
            let without_gate = RouterConfig { budget_gate: false, ..with_gate };
            let a = engine_route(&cost, with_gate, Some(certificate_for(w, CombinePolicy::Hybrid)), src, dst, budget);
            let b = engine_route(&cost, without_gate, Some(certificate_for(w, CombinePolicy::Hybrid)), src, dst, budget);
            prop_assert!(a.stats.completed && b.stats.completed);
            prop_assert!(
                (a.probability - b.probability).abs() < 1e-12,
                "budget gate changed the answer under {bound:?}: {} vs {}",
                a.probability, b.probability
            );
        }
    }
}

/// Regression pin for the unsoundness the oracle harness originally
/// found (ROADMAP, PR 2): under the hybrid's learned estimator arm, the
/// legacy optimistic CDF bound prunes labels whose completions later
/// overtake the incumbent, changing the returned policy. Each seeded
/// witness below reproduces measurable drift (the full-matrix harness
/// averaged ~3.5e-3; isolated to the bound alone it exceeds 1e-3, up to
/// ~8e-2) against the exhaustive bound-off reference — and the
/// support-aware `CertifiedEnvelope` bound, today's default, returns the
/// *exact* reference answer on the very same queries at full pruning
/// sharpness.
#[test]
fn optimistic_drift_witnesses_are_fixed_by_the_envelope_bound() {
    // (scenario index, source, destination, budget multiplier) — found
    // by scanning all node pairs; see the git history of this file.
    let witnesses = [
        (0usize, 5u32, 0u32, 1.05f64), // grid-dense: drift ~7.3e-2
        (1, 10, 1, 1.05),              // grid-wide: drift ~2.5e-2
        (3, 7, 0, 1.0),                // heavy-tail-grid: drift ~5.8e-2
    ];
    for (w, s, d, mult) in witnesses {
        let sc = &fixtures()[w];
        let cost = HybridCost::from_ground_truth(&sc.world, &sc.model, CombinePolicy::Hybrid);
        let (src, dst, budget) =
            make_query(&sc.world, &sc.model, s, d, mult).expect("witness query is routable");
        let mk = |bound| RouterConfig {
            bound,
            dominance: DominanceMode::Off,
            max_labels: 200_000,
            ..RouterConfig::default()
        };
        let route = |bound| {
            let cfg = mk(bound);
            let r = engine_route(
                &cost,
                cfg,
                Some(certificate_for(w, CombinePolicy::Hybrid)),
                src,
                dst,
                budget,
            );
            assert!(r.stats.completed, "{}: {bound:?} hit the label cap", sc.name);
            r
        };

        let reference = route(BoundMode::Off);
        let optimistic = route(BoundMode::Optimistic);
        let envelope = route(BoundMode::CertifiedEnvelope);

        let opt_drift = (reference.probability - optimistic.probability).abs();
        assert!(
            opt_drift > 1e-3,
            "{} ({s}->{d} x{mult}): the pinned Optimistic witness no longer drifts \
             ({opt_drift:.3e}) — if the bound became sound, move it to the sound matrix",
            sc.name
        );
        let env_drift = (reference.probability - envelope.probability).abs();
        assert!(
            env_drift < 1e-9,
            "{} ({s}->{d} x{mult}): CertifiedEnvelope drifted {env_drift:.3e} \
             on the Optimistic witness",
            sc.name
        );
        // And the envelope is doing real work on the witness, not
        // degrading to the exhaustive reference.
        assert!(
            envelope.stats.labels_created < reference.stats.labels_created,
            "{}: envelope bound pruned nothing on the witness",
            sc.name
        );
    }
}

/// Deterministic smoke: on **every** topology of the scenario matrix,
/// the policy matrix must certify a healthy number of queries (guards
/// against the proptest cases silently skipping a scenario via the
/// oracle cap — a skipped topology certifies nothing).
#[test]
fn differential_coverage_spans_every_topology() {
    for (w, sc) in fixtures().iter().enumerate() {
        let mut certified = 0usize;
        let mut skipped = 0usize;
        let n = sc.world.graph.num_nodes() as u32;
        for k in 0..8u32 {
            // Alternate between cross-world and nearer pairs: the
            // heavy-tailed scenario's wide budgets push long queries
            // past the oracle cap, short ones stay enumerable.
            let hop = if k % 2 == 0 { n / 2 } else { 2 + k };
            let Some((src, dst, budget)) =
                make_query(&sc.world, &sc.model, k * 3 + 1, (k * 3 + 1) + hop, 1.05)
            else {
                continue;
            };
            match certify_query(w, CombinePolicy::Hybrid, src, dst, budget) {
                Ok(0) => skipped += 1,
                Ok(c) => certified += c,
                Err(e) => panic!("differential failure on {}: {e:?}", sc.name),
            }
        }
        // 60 configurations per certified query; at least two queries
        // must survive the oracle cap on each topology.
        assert!(
            certified >= 120,
            "{}: only {certified} configuration-queries certified ({skipped} skipped)",
            sc.name
        );
    }
}
