//! Certification for the persistent-lane `BatchExecutor` behind the
//! serving dispatch plane:
//!
//! * **determinism** — `execute` returns results bitwise-identical to
//!   sequential `engine.route` at every lane count, in input order,
//! * **inline fast path** — a batch of length 1 (and every batch on a
//!   single-lane executor) routes inline on the caller: no helper
//!   thread is spawned for lanes == 1 and no lane is woken for len == 1,
//!   both pinned through `ExecutorStats`,
//! * **panic containment** — a rigged query surfaces as
//!   `EngineError::Internal` without taking down a lane or skewing the
//!   rest of the batch,
//! * **reuse** — one executor serves many batches back to back (the
//!   serving batcher dispatches thousands of times per second against
//!   long-lived lanes).

use std::sync::{Arc, OnceLock};
use stochastic_routing::core::model::training::{train_hybrid, TrainingConfig};
use stochastic_routing::core::routing::{
    BatchExecutor, EngineBuilder, EngineError, Query, RouteResult, RouterConfig,
};
use stochastic_routing::core::{CombinePolicy, HybridCost, HybridModel};
use stochastic_routing::ml::forest::ForestConfig;
use stochastic_routing::synth::{DistanceCategory, QueryGenerator, SyntheticWorld, WorldConfig};

fn fixture() -> &'static (SyntheticWorld, HybridModel) {
    static FIX: OnceLock<(SyntheticWorld, HybridModel)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = SyntheticWorld::build(WorldConfig::tiny());
        let cfg = TrainingConfig {
            train_pairs: 120,
            test_pairs: 40,
            min_obs: 5,
            bins: 10,
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::default()
            },
            ..TrainingConfig::default()
        };
        let (model, _) = train_hybrid(&world, &cfg).expect("fixture trains");
        (world, model)
    })
}

fn cost() -> HybridCost {
    let (world, model) = fixture();
    HybridCost::from_ground_truth(world, model, CombinePolicy::Hybrid)
}

fn workload(n: usize) -> Vec<Query> {
    let (world, _) = fixture();
    let mut qg = QueryGenerator::new(0xBA7C4);
    qg.generate(&world.graph, &world.model, DistanceCategory::ZeroToOne, n)
        .iter()
        .map(Query::from)
        .collect()
}

fn assert_identical(a: &RouteResult, b: &RouteResult, what: &str) {
    assert_eq!(
        a.probability.to_bits(),
        b.probability.to_bits(),
        "{what}: probability differs"
    );
    let path_a = a.path.as_ref().map(|p| (&p.nodes, &p.edges));
    let path_b = b.path.as_ref().map(|p| (&p.nodes, &p.edges));
    assert_eq!(path_a, path_b, "{what}: path differs");
    assert_eq!(a.distribution, b.distribution, "{what}: distribution differs");
}

#[test]
fn executor_matches_sequential_routing_at_every_lane_count() {
    let cost = cost();
    let queries = workload(10);

    let reference_engine = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    let reference: Vec<RouteResult> = queries
        .iter()
        .map(|q| reference_engine.route(q).expect("workload queries route"))
        .collect();

    for lanes in [1usize, 2, 4] {
        let engine = Arc::new(
            EngineBuilder::new(cost.clone())
                .config(RouterConfig::default())
                .build(),
        );
        let exec = BatchExecutor::new(Arc::clone(&engine), lanes);
        assert_eq!(exec.lanes(), lanes);
        let results = exec.execute(queries.clone());
        assert_eq!(results.len(), queries.len());
        for (i, (r, expected)) in results.iter().zip(&reference).enumerate() {
            let r = r.as_ref().expect("workload queries route");
            assert_identical(r, expected, &format!("query {i} at {lanes} lane(s)"));
        }
        let stats = exec.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.queries, queries.len() as u64);
        if lanes == 1 {
            assert_eq!(stats.inline_batches, 1, "single lane always routes inline");
            assert_eq!(stats.dispatched_batches, 0);
        } else {
            assert_eq!(stats.dispatched_batches, 1);
        }
    }
}

#[test]
fn single_query_batches_route_inline_without_waking_a_lane() {
    let cost = cost();
    let queries = workload(3);
    let engine = Arc::new(
        EngineBuilder::new(cost.clone())
            .config(RouterConfig::default())
            .build(),
    );
    let reference: Vec<RouteResult> = queries
        .iter()
        .map(|q| {
            EngineBuilder::new(cost.clone())
                .config(RouterConfig::default())
                .build()
                .route(q)
                .expect("workload queries route")
        })
        .collect();

    // Helper lanes exist (4 lanes -> 3 parked threads), but a length-1
    // batch must never touch them.
    let exec = BatchExecutor::new(Arc::clone(&engine), 4);
    assert_eq!(exec.stats().worker_threads, 3);
    for (i, q) in queries.iter().enumerate() {
        let results = exec.execute(vec![*q]);
        assert_identical(
            results[0].as_ref().expect("workload queries route"),
            &reference[i],
            &format!("inline single-query batch {i}"),
        );
    }
    let stats = exec.stats();
    assert_eq!(stats.batches, 3);
    assert_eq!(stats.inline_batches, 3, "len-1 batches are inline");
    assert_eq!(stats.dispatched_batches, 0, "no lane handoff happened");

    // And `parallelism == 1` spawns nothing at all: a single-lane
    // executor has zero helper threads by construction.
    let solo = BatchExecutor::new(engine, 1);
    assert_eq!(solo.stats().worker_threads, 0, "lanes=1 spawns no threads");
    let results = solo.execute(queries.clone());
    for (i, (r, expected)) in results.iter().zip(&reference).enumerate() {
        assert_identical(
            r.as_ref().expect("workload queries route"),
            expected,
            &format!("single-lane batch query {i}"),
        );
    }
    assert_eq!(solo.stats().inline_batches, 1);
}

#[test]
fn executor_reuse_across_many_batches_is_answer_preserving() {
    let cost = cost();
    let queries = workload(6);
    let engine = Arc::new(
        EngineBuilder::new(cost.clone())
            .config(RouterConfig::default())
            .build(),
    );
    let reference: Vec<RouteResult> = queries
        .iter()
        .map(|q| engine.route(q).expect("workload queries route"))
        .collect();

    let exec = BatchExecutor::new(Arc::clone(&engine), 3);
    for round in 0..20 {
        let results = exec.execute(queries.clone());
        for (i, (r, expected)) in results.iter().zip(&reference).enumerate() {
            assert_identical(
                r.as_ref().expect("workload queries route"),
                expected,
                &format!("round {round} query {i}"),
            );
        }
    }
    let stats = exec.stats();
    assert_eq!(stats.batches, 20);
    assert_eq!(stats.queries, 120);
    assert_eq!(stats.dispatched_batches, 20);
}

#[test]
fn panicking_query_is_contained_within_the_lanes() {
    let cost = cost();
    let queries = workload(6);
    let victim = queries[2];

    let healthy = EngineBuilder::new(cost.clone())
        .config(RouterConfig::default())
        .build();
    let reference = healthy.route_batch(&queries, 1);

    let rigged = Arc::new(
        EngineBuilder::new(cost.clone())
            .config(RouterConfig::default())
            .panic_on_query(victim.source, victim.target)
            .build(),
    );
    for lanes in [1usize, 3] {
        let exec = BatchExecutor::new(Arc::clone(&rigged), lanes);
        let results = exec.execute(queries.clone());
        for (i, (r, expected)) in results.iter().zip(&reference).enumerate() {
            let q = &queries[i];
            if q.source == victim.source && q.target == victim.target {
                assert_eq!(r.as_ref().unwrap_err(), &EngineError::Internal);
            } else {
                assert_identical(
                    r.as_ref().expect("non-victim queries route"),
                    expected.as_ref().unwrap(),
                    &format!("query {i} after a contained panic ({lanes} lanes)"),
                );
            }
        }
        // The lanes survive: the same executor answers the next batch.
        let again = exec.execute(vec![queries[0]]);
        assert_identical(
            again[0].as_ref().expect("engine stays serviceable"),
            reference[0].as_ref().unwrap(),
            "first query after a contained panic",
        );
    }
    assert!(rigged.stats().panics >= 2, "contained panics are counted");
}
